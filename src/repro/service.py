"""An embeddable PPKWS service: dict-in / dict-out request execution.

Applications embedding the library (or wrapping it behind RPC) want a
single stable entry point rather than the full Python API.
:class:`PPKWSService` manages named networks (public graph + per-user
attachments + indexes) and executes plain-dict requests::

    service = PPKWSService()
    service.create_network("collab", public_graph)
    service.attach_user("collab", "bob", private_graph)
    response = service.execute({
        "op": "blinks", "network": "collab", "owner": "bob",
        "keywords": ["DB", "AI"], "tau": 4.0, "k": 5,
    })

Responses are plain dicts with ``status`` = ``"ok"`` / ``"degraded"`` /
``"error"`` — no library exception ever escapes :meth:`execute`, making
the facade safe to expose to untrusted request producers.  Malformed
requests get explicit ``"missing field 'keywords'"``-style messages;
unexpected internal failures are reported as ``"ExceptionClass: message"``
(never a bare ``repr`` that leaks engine internals) and counted under
the ``ppkws_internal_errors_total`` metric.

Robustness contract:

* Query requests may carry ``deadline_ms`` / ``max_expansions``.  A
  query whose budget expires returns ``status: "degraded"`` with the
  answers completed so far plus ``completed_steps`` /
  ``interrupted_step`` describing how far the pipeline got.
* The service admits at most ``max_in_flight`` concurrent requests
  (default: unlimited).  Requests beyond the cap fail fast with
  ``status: "error"`` and ``retryable: true`` — callers should back off
  and retry — while malformed/failed requests carry
  ``retryable: false``.
* Administration (``create_network`` / ``attach`` / ``detach`` /
  ``drop``) is reachable through :meth:`execute` too, so an RPC wrapper
  only needs the one entry point.
* The registry and per-engine attachment maps are guarded by locks, so
  admin ops are safe under the concurrency that ``max_in_flight``
  advertises: concurrent creates/attaches of the same name resolve to
  exactly one winner, and queries never observe a half-registered
  network.

Observability (see :mod:`repro.obs` and the README's catalogue):

* Every request increments ``ppkws_requests_total{op,status}`` and
  records a ``ppkws_request_seconds{op}`` latency histogram sample in
  the service's metrics registry (the one passed to the constructor, or
  the process-wide installed one).
* Slow (``>= slow_query_ms``), degraded and errored requests land in a
  bounded in-memory ring of :class:`~repro.obs.QueryTrace` records.
* A ``{"op": "metrics"}`` request returns the metric snapshot, the
  recent traces and a Prometheus text rendering; it bypasses admission
  control so operators keep their eyes during overload.
* Any query request may set ``"trace": true`` to receive its own
  ``counters`` and ``trace`` (per-step timings, budget expansions,
  degradation fields) in the response.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import asdict
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.core.framework import PIPELINE_STEPS, PPKWS, QueryOptions
from repro.core.persist import load_index, save_index
from repro.exceptions import ReproError, ServiceOverloadedError
from repro.graph.frozen import freeze
from repro.graph.labeled_graph import LabeledGraph
from repro.obs import (
    MetricsRegistry,
    QueryTrace,
    TraceRing,
    installed,
    render_prometheus,
)
from repro.semantics.answers import KnkAnswer, RootedAnswer

__all__ = ["PPKWSService"]


def _serialize_rooted(answer: RootedAnswer) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "root": answer.root,
        "weight": answer.weight(),
        "matches": {
            q: {"vertex": m.vertex, "distance": m.distance}
            for q, m in answer.matches.items()
        },
    }
    edges = getattr(answer, "edges", None)
    if edges:
        out["tree_edges"] = [sorted(e, key=repr) for e in edges]
    return out


def _serialize_knk(answer: KnkAnswer) -> Dict[str, Any]:
    return {
        "source": answer.source,
        "keyword": answer.keyword,
        "matches": [
            {"vertex": m.vertex, "distance": m.distance}
            for m in answer.matches
        ],
    }


def _require(request: Dict[str, Any], *fields: str) -> None:
    """Raise a clear error for the first missing request field."""
    for field in fields:
        if field not in request:
            raise ReproError(f"missing field {field!r}")


def _graph_from_request(request: Dict[str, Any], field: str) -> LabeledGraph:
    """Build a graph from a request payload.

    Accepts either a ready :class:`LabeledGraph` under ``field`` or the
    wire-friendly pair ``<field>_edges`` (list of ``[u, v]`` or
    ``[u, v, weight]``) and optional ``<field>_labels``
    (vertex -> label list).
    """
    graph = request.get(field)
    if isinstance(graph, LabeledGraph):
        return graph
    if graph is not None:
        raise ReproError(
            f"field {field!r} must be a LabeledGraph "
            f"(or send {field + '_edges'!r} instead)"
        )
    edges_field = f"{field}_edges"
    _require(request, edges_field)
    out = LabeledGraph()
    for edge in request[edges_field]:
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise ReproError(
                f"field {edges_field!r} entries must be [u, v] or [u, v, weight]"
            )
        out.add_edge(*edge)
    for v, ls in (request.get(f"{field}_labels") or {}).items():
        out.add_vertex(v, ls)
    return out


def _budget_args(request: Dict[str, Any]) -> Dict[str, Any]:
    """Per-request budget keywords for the engine entry points."""
    out: Dict[str, Any] = {}
    if request.get("deadline_ms") is not None:
        out["deadline_ms"] = float(request["deadline_ms"])
    if request.get("max_expansions") is not None:
        out["max_expansions"] = int(request["max_expansions"])
    return out


def _degradation_fields(result: Any) -> Dict[str, Any]:
    """Status plus pipeline-progress fields for a query result."""
    if not result.degraded:
        return {"status": "ok"}
    return {
        "status": "degraded",
        "completed_steps": list(result.completed_steps),
        "interrupted_step": result.interrupted_step,
    }


class PPKWSService:
    """Named-network registry plus a uniform request executor.

    ``max_in_flight`` caps concurrently executing requests; ``None``
    (the default) disables admission control.

    ``registry`` receives this service's request metrics; when ``None``
    the process-wide registry (:func:`repro.obs.install`) is used, and
    when none is installed either, instrumentation reduces to a ``None``
    check per request.  ``slow_query_ms`` is the latency above which an
    otherwise-healthy request is recorded in the trace ring of size
    ``trace_ring_size``.
    """

    def __init__(
        self,
        sketch_k: int = 2,
        options: Optional[QueryOptions] = None,
        max_in_flight: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        slow_query_ms: float = 1000.0,
        trace_ring_size: int = 128,
    ):
        self._sketch_k = sketch_k
        self._options = options
        #: name -> engine; ``None`` marks a reservation (build in flight)
        self._engines: Dict[str, Optional[PPKWS]] = {}
        #: guards every check-then-act on :attr:`_engines`
        self._engines_lock = threading.Lock()
        self._max_in_flight = max_in_flight
        self._in_flight = 0
        self._admission_lock = threading.Lock()
        self._registry = registry
        self._slow_query_ms = slow_query_ms
        self._traces = TraceRing(trace_ring_size)
        #: per-thread scratch where query handlers deposit the result /
        #: budget objects so ``execute`` can assemble the QueryTrace
        self._tls = threading.local()

    def _metrics_registry(self) -> Optional[MetricsRegistry]:
        """The effective registry: constructor-injected, else installed."""
        return self._registry if self._registry is not None else installed()

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def create_network(
        self,
        name: str,
        public: LabeledGraph,
        index_path: Optional[str] = None,
    ) -> None:
        """Register a public graph under ``name`` and build its index.

        ``index_path`` enables index persistence: an existing file there
        is loaded instead of rebuilding the PADS/KPADS sketches (the only
        expensive artifact), and after a fresh build the index is saved
        there for the next start.  A missing, corrupt or mismatched file
        (e.g. the graph changed since it was written) silently falls back
        to a fresh build that overwrites it — persistence is a cache,
        never a correctness risk.  An *unwritable* ``index_path`` is a
        configuration error and raises :class:`ReproError` (the network
        is not registered).

        Thread-safe: the name is reserved under the registry lock before
        the (expensive) index build starts, so concurrent creates of the
        same name resolve to exactly one winner — the others fail with
        ``"already exists"`` — without serializing builds of *different*
        networks.
        """
        with self._engines_lock:
            if name in self._engines:
                raise ReproError(f"network {name!r} already exists")
            self._engines[name] = None  # reserve while we build
        try:
            index = None
            frozen_public = freeze(public)
            if index_path is not None:
                try:
                    index = load_index(frozen_public, index_path)
                except FileNotFoundError:
                    index = None
                except (ReproError, OSError, ValueError, KeyError, TypeError):
                    # Corrupt or stale index file: rebuild and replace it.
                    index = None
            engine = PPKWS(
                frozen_public,
                sketch_k=self._sketch_k,
                options=self._options,
                index=index,
            )
            if index_path is not None and index is None:
                try:
                    save_index(engine.index, index_path)
                except OSError as exc:
                    # An unwritable/invalid path is a caller error, not a
                    # cache miss: surface it as a library error so the
                    # facade's "no library exception escapes" contract
                    # holds (OSError used to propagate out of execute).
                    raise ReproError(
                        f"cannot save index to {index_path!r}: {exc}"
                    ) from exc
        except BaseException:
            with self._engines_lock:
                self._engines.pop(name, None)  # release the reservation
            raise
        with self._engines_lock:
            self._engines[name] = engine
        registry = self._metrics_registry()
        if registry is not None:
            registry.set_gauge("ppkws_networks", len(self.networks()))

    def drop_network(self, name: str) -> None:
        """Forget a network and all its attachments.  Thread-safe."""
        with self._engines_lock:
            if self._engines.get(name) is None:
                # Absent, or reserved by an in-flight create (not ours to
                # drop until the create finishes).
                raise ReproError(f"network {name!r} does not exist")
            del self._engines[name]
        registry = self._metrics_registry()
        if registry is not None:
            registry.set_gauge("ppkws_networks", len(self.networks()))

    def attach_user(self, network: str, owner: str, private: LabeledGraph) -> int:
        """Attach a user's private graph; returns the portal count."""
        engine = self._engine(network)
        attachment = engine.attach(owner, private)
        return len(attachment.portals)

    def detach_user(self, network: str, owner: str) -> None:
        """Detach a user's private graph."""
        self._engine(network).detach(owner)

    def networks(self) -> List[str]:
        """Registered network names (reservations excluded)."""
        with self._engines_lock:
            return sorted(n for n, e in self._engines.items() if e is not None)

    def _engine(self, network: str) -> PPKWS:
        with self._engines_lock:
            try:
                engine = self._engines[network]
            except KeyError:
                raise ReproError(f"network {network!r} does not exist") from None
        if engine is None:
            raise ReproError(f"network {network!r} is still being created")
        return engine

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    @contextmanager
    def _admit(self) -> Iterator[None]:
        """Reserve an execution slot, or fail fast when saturated."""
        if self._max_in_flight is None:
            yield
            return
        with self._admission_lock:
            if self._in_flight >= self._max_in_flight:
                raise ServiceOverloadedError(self._in_flight, self._max_in_flight)
            self._in_flight += 1
        try:
            yield
        finally:
            with self._admission_lock:
                self._in_flight -= 1

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request dict; never raises library errors."""
        started = time.perf_counter()
        self._tls.ctx = ctx = {}
        error_class: Optional[str] = None
        internal_error = False
        op = request.get("op") if isinstance(request, dict) else None
        try:
            handler = self._HANDLERS.get(op)
            if handler is None:
                response: Dict[str, Any] = {
                    "status": "error",
                    "error": f"unknown op {op!r}; valid ops: "
                             f"{sorted(self._HANDLERS)}",
                    "retryable": False,
                }
            elif op == "metrics":
                # Observability must survive overload: no admission slot.
                response = handler(self, request)
            else:
                with self._admit():
                    response = handler(self, request)
        except ServiceOverloadedError as exc:
            error_class = type(exc).__name__
            response = {"status": "error", "error": str(exc), "retryable": True}
        except ReproError as exc:
            error_class = type(exc).__name__
            response = {
                "status": "error",
                "error": str(exc) or repr(exc),
                "retryable": False,
            }
        except (KeyError, TypeError, ValueError, OSError, AttributeError) as exc:
            # Unexpected internal failure.  A bare str() of e.g. KeyError
            # is just the quoted key ("'collab'") — leaked engine
            # internals rather than a message — so always prefix the
            # exception class.
            error_class = type(exc).__name__
            internal_error = True
            response = {
                "status": "error",
                "error": f"{error_class}: {exc}",
                "retryable": False,
            }
        finally:
            self._tls.ctx = None
        self._observe_request(request, op, response, ctx, started,
                              error_class, internal_error)
        return response

    # -- observability --------------------------------------------------
    def _observe_request(
        self,
        request: Any,
        op: Any,
        response: Dict[str, Any],
        ctx: Dict[str, Any],
        started: float,
        error_class: Optional[str],
        internal_error: bool,
    ) -> None:
        """Record one finished request: metrics, trace ring, trace field.

        Defensive by design: observability must never break the facade's
        "no exception escapes" contract, so any failure here is swallowed
        after marking the response.
        """
        try:
            duration_ms = (time.perf_counter() - started) * 1000.0
            status = response.get("status", "error")
            op_label = op if isinstance(op, str) else repr(op)
            trace = QueryTrace(
                op=op_label,
                status=status,
                duration_ms=duration_ms,
                error=error_class,
            )
            if isinstance(request, dict):
                network = request.get("network")
                owner = request.get("owner")
                trace.network = network if isinstance(network, str) else None
                trace.owner = owner if isinstance(owner, str) else None
            result = ctx.get("result")
            if result is not None:
                trace.step_ms = {
                    step: getattr(result.breakdown, step) * 1000.0
                    for step in PIPELINE_STEPS
                }
                trace.counters = asdict(result.counters)
                trace.degraded = result.degraded
                trace.completed_steps = tuple(result.completed_steps)
                trace.interrupted_step = result.interrupted_step
            budget = ctx.get("budget")
            if budget is not None:
                trace.expansions = budget.expansions

            if isinstance(request, dict) and request.get("trace"):
                if result is not None:
                    response["counters"] = dict(trace.counters)
                response["trace"] = trace.to_dict()

            if status != "ok" or duration_ms >= self._slow_query_ms:
                self._traces.record(trace)

            registry = self._metrics_registry()
            if registry is not None:
                registry.inc(
                    "ppkws_requests_total",
                    labels={"op": op_label, "status": status},
                )
                registry.observe(
                    "ppkws_request_seconds",
                    duration_ms / 1000.0,
                    labels={"op": op_label},
                )
                if internal_error:
                    registry.inc(
                        "ppkws_internal_errors_total",
                        labels={"error": error_class or "unknown"},
                    )
                if error_class == "ServiceOverloadedError":
                    registry.inc("ppkws_rejected_total")
                registry.set_gauge("ppkws_in_flight_requests", self._in_flight)
        except Exception:  # pragma: no cover - defensive only
            pass

    def _stash(self, result: Any, budget: Any) -> None:
        """Deposit query internals for :meth:`_observe_request`."""
        ctx = getattr(self._tls, "ctx", None)
        if ctx is not None:
            ctx["result"] = result
            ctx["budget"] = budget

    def recent_traces(self) -> List[Dict[str, Any]]:
        """The slow/degraded/errored query traces currently in the ring."""
        return self._traces.snapshot()

    # -- handlers -------------------------------------------------------
    def _rooted_query(self, request: Dict[str, Any], method: str) -> Dict[str, Any]:
        _require(request, "network", "owner", "keywords")
        engine = self._engine(request["network"])
        run = getattr(engine, method)
        budget = engine.make_budget(**_budget_args(request))
        result = run(
            request["owner"],
            list(request["keywords"]),
            float(request.get("tau", 5.0)),
            k=int(request.get("k", 10)),
            budget=budget,
        )
        self._stash(result, budget)
        out = _degradation_fields(result)
        out["answers"] = [_serialize_rooted(a) for a in result.answers]
        out["breakdown"] = {
            "peval": result.breakdown.peval,
            "arefine": result.breakdown.arefine,
            "acomplete": result.breakdown.acomplete,
        }
        return out

    def _op_blinks(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "blinks")

    def _op_rclique(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "rclique")

    def _op_banks(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "banks")

    def _op_knk(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner", "source", "keyword")
        engine = self._engine(request["network"])
        budget = engine.make_budget(**_budget_args(request))
        result = engine.knk(
            request["owner"],
            request["source"],
            request["keyword"],
            int(request.get("k", 10)),
            budget=budget,
        )
        self._stash(result, budget)
        out = _degradation_fields(result)
        out["answer"] = _serialize_knk(result.answer)
        return out

    def _op_knk_multi(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner", "source", "keywords")
        engine = self._engine(request["network"])
        budget = engine.make_budget(**_budget_args(request))
        result = engine.knk_multi(
            request["owner"],
            request["source"],
            list(request["keywords"]),
            int(request.get("k", 10)),
            mode=request.get("mode", "and"),
            budget=budget,
        )
        self._stash(result, budget)
        out = _degradation_fields(result)
        out["answer"] = _serialize_knk(result.answer)
        return out

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network")
        engine = self._engine(request["network"])
        out: Dict[str, Any] = {
            "status": "ok",
            "public": dict(engine.public.stats()),
            "owners": engine.owners(),
            "index_entries": engine.index.pads.total_entries,
        }
        owner = request.get("owner")
        if owner is not None:
            attachment = engine.attachment(owner)
            out["attachment"] = {
                "private_vertices": attachment.private.num_vertices,
                "private_edges": attachment.private.num_edges,
                "portals": len(attachment.portals),
                "refined_portal_pairs": len(attachment.refined_portal_pairs) // 2,
            }
        return out

    def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The observability op: snapshot + recent traces + Prometheus text."""
        registry = self._metrics_registry()
        return {
            "status": "ok",
            "metrics": registry.snapshot() if registry is not None else {},
            "recent_traces": self._traces.snapshot(),
            "prometheus": render_prometheus(registry),
        }

    # -- admin handlers -------------------------------------------------
    def _op_create_network(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network")
        public = _graph_from_request(request, "public")
        self.create_network(
            request["network"], public, index_path=request.get("index_path")
        )
        return {"status": "ok", "network": request["network"]}

    def _op_attach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner")
        private = _graph_from_request(request, "private")
        portals = self.attach_user(request["network"], request["owner"], private)
        return {"status": "ok", "owner": request["owner"], "portals": portals}

    def _op_detach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner")
        self.detach_user(request["network"], request["owner"])
        return {"status": "ok", "owner": request["owner"]}

    def _op_drop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network")
        self.drop_network(request["network"])
        return {"status": "ok", "network": request["network"]}

    _HANDLERS: Dict[str, Callable[["PPKWSService", Dict[str, Any]], Dict[str, Any]]] = {
        "blinks": _op_blinks,
        "rclique": _op_rclique,
        "banks": _op_banks,
        "knk": _op_knk,
        "knk_multi": _op_knk_multi,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "create_network": _op_create_network,
        "attach": _op_attach,
        "detach": _op_detach,
        "drop": _op_drop,
    }
