"""An embeddable PPKWS service: dict-in / dict-out request execution.

Applications embedding the library (or wrapping it behind RPC) want a
single stable entry point rather than the full Python API.
:class:`PPKWSService` manages named networks (public graph + per-user
attachments + indexes) and executes plain-dict requests::

    service = PPKWSService()
    service.create_network("collab", public_graph)
    service.attach_user("collab", "bob", private_graph)
    response = service.execute({
        "op": "blinks", "network": "collab", "owner": "bob",
        "keywords": ["DB", "AI"], "tau": 4.0, "k": 5,
    })

Responses are plain dicts with ``status`` = ``"ok"`` / ``"error"`` — no
library exception ever escapes :meth:`execute`, making the facade safe
to expose to untrusted request producers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.framework import PPKWS, QueryOptions
from repro.exceptions import ReproError
from repro.graph.labeled_graph import LabeledGraph
from repro.semantics.answers import KnkAnswer, RootedAnswer

__all__ = ["PPKWSService"]


def _serialize_rooted(answer: RootedAnswer) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "root": answer.root,
        "weight": answer.weight(),
        "matches": {
            q: {"vertex": m.vertex, "distance": m.distance}
            for q, m in answer.matches.items()
        },
    }
    edges = getattr(answer, "edges", None)
    if edges:
        out["tree_edges"] = [sorted(e, key=repr) for e in edges]
    return out


def _serialize_knk(answer: KnkAnswer) -> Dict[str, Any]:
    return {
        "source": answer.source,
        "keyword": answer.keyword,
        "matches": [
            {"vertex": m.vertex, "distance": m.distance}
            for m in answer.matches
        ],
    }


class PPKWSService:
    """Named-network registry plus a uniform request executor."""

    def __init__(self, sketch_k: int = 2, options: Optional[QueryOptions] = None):
        self._sketch_k = sketch_k
        self._options = options
        self._engines: Dict[str, PPKWS] = {}

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def create_network(self, name: str, public: LabeledGraph) -> None:
        """Register a public graph under ``name`` and build its index."""
        if name in self._engines:
            raise ReproError(f"network {name!r} already exists")
        self._engines[name] = PPKWS(
            public, sketch_k=self._sketch_k, options=self._options
        )

    def drop_network(self, name: str) -> None:
        """Forget a network and all its attachments."""
        if name not in self._engines:
            raise ReproError(f"network {name!r} does not exist")
        del self._engines[name]

    def attach_user(self, network: str, owner: str, private: LabeledGraph) -> int:
        """Attach a user's private graph; returns the portal count."""
        engine = self._engine(network)
        attachment = engine.attach(owner, private)
        return len(attachment.portals)

    def detach_user(self, network: str, owner: str) -> None:
        """Detach a user's private graph."""
        self._engine(network).detach(owner)

    def networks(self) -> List[str]:
        """Registered network names."""
        return sorted(self._engines)

    def _engine(self, network: str) -> PPKWS:
        try:
            return self._engines[network]
        except KeyError:
            raise ReproError(f"network {network!r} does not exist") from None

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request dict; never raises library errors."""
        try:
            op = request.get("op")
            handler = self._HANDLERS.get(op)
            if handler is None:
                return {
                    "status": "error",
                    "error": f"unknown op {op!r}; valid ops: "
                             f"{sorted(self._HANDLERS)}",
                }
            return handler(self, request)
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return {"status": "error", "error": str(exc) or repr(exc)}

    # -- handlers -------------------------------------------------------
    def _rooted_query(self, request: Dict[str, Any], method: str) -> Dict[str, Any]:
        engine = self._engine(request["network"])
        run = getattr(engine, method)
        result = run(
            request["owner"],
            list(request["keywords"]),
            float(request.get("tau", 5.0)),
            k=int(request.get("k", 10)),
        )
        return {
            "status": "ok",
            "answers": [_serialize_rooted(a) for a in result.answers],
            "breakdown": {
                "peval": result.breakdown.peval,
                "arefine": result.breakdown.arefine,
                "acomplete": result.breakdown.acomplete,
            },
        }

    def _op_blinks(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "blinks")

    def _op_rclique(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "rclique")

    def _op_banks(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "banks")

    def _op_knk(self, request: Dict[str, Any]) -> Dict[str, Any]:
        engine = self._engine(request["network"])
        result = engine.knk(
            request["owner"],
            request["source"],
            request["keyword"],
            int(request.get("k", 10)),
        )
        return {"status": "ok", "answer": _serialize_knk(result.answer)}

    def _op_knk_multi(self, request: Dict[str, Any]) -> Dict[str, Any]:
        engine = self._engine(request["network"])
        result = engine.knk_multi(
            request["owner"],
            request["source"],
            list(request["keywords"]),
            int(request.get("k", 10)),
            mode=request.get("mode", "and"),
        )
        return {"status": "ok", "answer": _serialize_knk(result.answer)}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        engine = self._engine(request["network"])
        out: Dict[str, Any] = {
            "status": "ok",
            "public": dict(engine.public.stats()),
            "owners": engine.owners(),
            "index_entries": engine.index.pads.total_entries,
        }
        owner = request.get("owner")
        if owner is not None:
            attachment = engine.attachment(owner)
            out["attachment"] = {
                "private_vertices": attachment.private.num_vertices,
                "private_edges": attachment.private.num_edges,
                "portals": len(attachment.portals),
                "refined_portal_pairs": len(attachment.refined_portal_pairs) // 2,
            }
        return out

    _HANDLERS: Dict[str, Callable[["PPKWSService", Dict[str, Any]], Dict[str, Any]]] = {
        "blinks": _op_blinks,
        "rclique": _op_rclique,
        "banks": _op_banks,
        "knk": _op_knk,
        "knk_multi": _op_knk_multi,
        "stats": _op_stats,
    }
