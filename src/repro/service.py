"""An embeddable PPKWS service: dict-in / dict-out request execution.

Applications embedding the library (or wrapping it behind RPC) want a
single stable entry point rather than the full Python API.
:class:`PPKWSService` manages named networks (public graph + per-user
attachments + indexes) and executes plain-dict requests::

    service = PPKWSService()
    service.create_network("collab", public_graph)
    service.attach_user("collab", "bob", private_graph)
    response = service.execute({
        "op": "blinks", "network": "collab", "owner": "bob",
        "keywords": ["DB", "AI"], "tau": 4.0, "k": 5,
    })

Responses are plain dicts with ``status`` = ``"ok"`` / ``"degraded"`` /
``"error"`` — no library exception ever escapes :meth:`execute`, making
the facade safe to expose to untrusted request producers.  Malformed
requests get explicit ``"missing field 'keywords'"``-style messages
rather than leaked engine internals.

Robustness contract:

* Query requests may carry ``deadline_ms`` / ``max_expansions``.  A
  query whose budget expires returns ``status: "degraded"`` with the
  answers completed so far plus ``completed_steps`` /
  ``interrupted_step`` describing how far the pipeline got.
* The service admits at most ``max_in_flight`` concurrent requests
  (default: unlimited).  Requests beyond the cap fail fast with
  ``status: "error"`` and ``retryable: true`` — callers should back off
  and retry — while malformed/failed requests carry
  ``retryable: false``.
* Administration (``create_network`` / ``attach`` / ``detach`` /
  ``drop``) is reachable through :meth:`execute` too, so an RPC wrapper
  only needs the one entry point.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.core.framework import PPKWS, QueryOptions
from repro.core.persist import load_index, save_index
from repro.exceptions import ReproError, ServiceOverloadedError
from repro.graph.frozen import freeze
from repro.graph.labeled_graph import LabeledGraph
from repro.semantics.answers import KnkAnswer, RootedAnswer

__all__ = ["PPKWSService"]


def _serialize_rooted(answer: RootedAnswer) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "root": answer.root,
        "weight": answer.weight(),
        "matches": {
            q: {"vertex": m.vertex, "distance": m.distance}
            for q, m in answer.matches.items()
        },
    }
    edges = getattr(answer, "edges", None)
    if edges:
        out["tree_edges"] = [sorted(e, key=repr) for e in edges]
    return out


def _serialize_knk(answer: KnkAnswer) -> Dict[str, Any]:
    return {
        "source": answer.source,
        "keyword": answer.keyword,
        "matches": [
            {"vertex": m.vertex, "distance": m.distance}
            for m in answer.matches
        ],
    }


def _require(request: Dict[str, Any], *fields: str) -> None:
    """Raise a clear error for the first missing request field."""
    for field in fields:
        if field not in request:
            raise ReproError(f"missing field {field!r}")


def _graph_from_request(request: Dict[str, Any], field: str) -> LabeledGraph:
    """Build a graph from a request payload.

    Accepts either a ready :class:`LabeledGraph` under ``field`` or the
    wire-friendly pair ``<field>_edges`` (list of ``[u, v]`` or
    ``[u, v, weight]``) and optional ``<field>_labels``
    (vertex -> label list).
    """
    graph = request.get(field)
    if isinstance(graph, LabeledGraph):
        return graph
    if graph is not None:
        raise ReproError(
            f"field {field!r} must be a LabeledGraph "
            f"(or send {field + '_edges'!r} instead)"
        )
    edges_field = f"{field}_edges"
    _require(request, edges_field)
    out = LabeledGraph()
    for edge in request[edges_field]:
        if not isinstance(edge, (list, tuple)) or len(edge) not in (2, 3):
            raise ReproError(
                f"field {edges_field!r} entries must be [u, v] or [u, v, weight]"
            )
        out.add_edge(*edge)
    for v, ls in (request.get(f"{field}_labels") or {}).items():
        out.add_vertex(v, ls)
    return out


def _budget_args(request: Dict[str, Any]) -> Dict[str, Any]:
    """Per-request budget keywords for the engine entry points."""
    out: Dict[str, Any] = {}
    if request.get("deadline_ms") is not None:
        out["deadline_ms"] = float(request["deadline_ms"])
    if request.get("max_expansions") is not None:
        out["max_expansions"] = int(request["max_expansions"])
    return out


def _degradation_fields(result: Any) -> Dict[str, Any]:
    """Status plus pipeline-progress fields for a query result."""
    if not result.degraded:
        return {"status": "ok"}
    return {
        "status": "degraded",
        "completed_steps": list(result.completed_steps),
        "interrupted_step": result.interrupted_step,
    }


class PPKWSService:
    """Named-network registry plus a uniform request executor.

    ``max_in_flight`` caps concurrently executing requests; ``None``
    (the default) disables admission control.
    """

    def __init__(
        self,
        sketch_k: int = 2,
        options: Optional[QueryOptions] = None,
        max_in_flight: Optional[int] = None,
    ):
        self._sketch_k = sketch_k
        self._options = options
        self._engines: Dict[str, PPKWS] = {}
        self._max_in_flight = max_in_flight
        self._in_flight = 0
        self._admission_lock = threading.Lock()

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def create_network(
        self,
        name: str,
        public: LabeledGraph,
        index_path: Optional[str] = None,
    ) -> None:
        """Register a public graph under ``name`` and build its index.

        ``index_path`` enables index persistence: an existing file there
        is loaded instead of rebuilding the PADS/KPADS sketches (the only
        expensive artifact), and after a fresh build the index is saved
        there for the next start.  A missing, corrupt or mismatched file
        (e.g. the graph changed since it was written) silently falls back
        to a fresh build that overwrites it — persistence is a cache,
        never a correctness risk.
        """
        if name in self._engines:
            raise ReproError(f"network {name!r} already exists")
        index = None
        frozen_public = freeze(public)
        if index_path is not None:
            try:
                index = load_index(frozen_public, index_path)
            except FileNotFoundError:
                index = None
            except (ReproError, OSError, ValueError, KeyError, TypeError):
                # Corrupt or stale index file: rebuild below and replace it.
                index = None
        engine = PPKWS(
            frozen_public,
            sketch_k=self._sketch_k,
            options=self._options,
            index=index,
        )
        if index_path is not None and index is None:
            save_index(engine.index, index_path)
        self._engines[name] = engine

    def drop_network(self, name: str) -> None:
        """Forget a network and all its attachments."""
        if name not in self._engines:
            raise ReproError(f"network {name!r} does not exist")
        del self._engines[name]

    def attach_user(self, network: str, owner: str, private: LabeledGraph) -> int:
        """Attach a user's private graph; returns the portal count."""
        engine = self._engine(network)
        attachment = engine.attach(owner, private)
        return len(attachment.portals)

    def detach_user(self, network: str, owner: str) -> None:
        """Detach a user's private graph."""
        self._engine(network).detach(owner)

    def networks(self) -> List[str]:
        """Registered network names."""
        return sorted(self._engines)

    def _engine(self, network: str) -> PPKWS:
        try:
            return self._engines[network]
        except KeyError:
            raise ReproError(f"network {network!r} does not exist") from None

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    @contextmanager
    def _admit(self) -> Iterator[None]:
        """Reserve an execution slot, or fail fast when saturated."""
        if self._max_in_flight is None:
            yield
            return
        with self._admission_lock:
            if self._in_flight >= self._max_in_flight:
                raise ServiceOverloadedError(self._in_flight, self._max_in_flight)
            self._in_flight += 1
        try:
            yield
        finally:
            with self._admission_lock:
                self._in_flight -= 1

    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one request dict; never raises library errors."""
        try:
            with self._admit():
                op = request.get("op")
                handler = self._HANDLERS.get(op)
                if handler is None:
                    return {
                        "status": "error",
                        "error": f"unknown op {op!r}; valid ops: "
                                 f"{sorted(self._HANDLERS)}",
                        "retryable": False,
                    }
                return handler(self, request)
        except ServiceOverloadedError as exc:
            return {"status": "error", "error": str(exc), "retryable": True}
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            return {
                "status": "error",
                "error": str(exc) or repr(exc),
                "retryable": False,
            }

    # -- handlers -------------------------------------------------------
    def _rooted_query(self, request: Dict[str, Any], method: str) -> Dict[str, Any]:
        _require(request, "network", "owner", "keywords")
        engine = self._engine(request["network"])
        run = getattr(engine, method)
        result = run(
            request["owner"],
            list(request["keywords"]),
            float(request.get("tau", 5.0)),
            k=int(request.get("k", 10)),
            **_budget_args(request),
        )
        out = _degradation_fields(result)
        out["answers"] = [_serialize_rooted(a) for a in result.answers]
        out["breakdown"] = {
            "peval": result.breakdown.peval,
            "arefine": result.breakdown.arefine,
            "acomplete": result.breakdown.acomplete,
        }
        return out

    def _op_blinks(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "blinks")

    def _op_rclique(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "rclique")

    def _op_banks(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._rooted_query(request, "banks")

    def _op_knk(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner", "source", "keyword")
        engine = self._engine(request["network"])
        result = engine.knk(
            request["owner"],
            request["source"],
            request["keyword"],
            int(request.get("k", 10)),
            **_budget_args(request),
        )
        out = _degradation_fields(result)
        out["answer"] = _serialize_knk(result.answer)
        return out

    def _op_knk_multi(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner", "source", "keywords")
        engine = self._engine(request["network"])
        result = engine.knk_multi(
            request["owner"],
            request["source"],
            list(request["keywords"]),
            int(request.get("k", 10)),
            mode=request.get("mode", "and"),
            **_budget_args(request),
        )
        out = _degradation_fields(result)
        out["answer"] = _serialize_knk(result.answer)
        return out

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network")
        engine = self._engine(request["network"])
        out: Dict[str, Any] = {
            "status": "ok",
            "public": dict(engine.public.stats()),
            "owners": engine.owners(),
            "index_entries": engine.index.pads.total_entries,
        }
        owner = request.get("owner")
        if owner is not None:
            attachment = engine.attachment(owner)
            out["attachment"] = {
                "private_vertices": attachment.private.num_vertices,
                "private_edges": attachment.private.num_edges,
                "portals": len(attachment.portals),
                "refined_portal_pairs": len(attachment.refined_portal_pairs) // 2,
            }
        return out

    # -- admin handlers -------------------------------------------------
    def _op_create_network(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network")
        public = _graph_from_request(request, "public")
        self.create_network(
            request["network"], public, index_path=request.get("index_path")
        )
        return {"status": "ok", "network": request["network"]}

    def _op_attach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner")
        private = _graph_from_request(request, "private")
        portals = self.attach_user(request["network"], request["owner"], private)
        return {"status": "ok", "owner": request["owner"], "portals": portals}

    def _op_detach(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network", "owner")
        self.detach_user(request["network"], request["owner"])
        return {"status": "ok", "owner": request["owner"]}

    def _op_drop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _require(request, "network")
        self.drop_network(request["network"])
        return {"status": "ok", "network": request["network"]}

    _HANDLERS: Dict[str, Callable[["PPKWSService", Dict[str, Any]], Dict[str, Any]]] = {
        "blinks": _op_blinks,
        "rclique": _op_rclique,
        "banks": _op_banks,
        "knk": _op_knk,
        "knk_multi": _op_knk_multi,
        "stats": _op_stats,
        "create_network": _op_create_network,
        "attach": _op_attach,
        "detach": _op_detach,
        "drop": _op_drop,
    }
