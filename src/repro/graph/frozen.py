"""Frozen compact-graph backend: CSR arrays over interned integer ids.

The paper's deployment story is asymmetric: one huge *immutable* public
graph ``G`` shared by everyone, many tiny *mutable* private graphs
``G'``.  The dict-of-dicts :class:`~repro.graph.labeled_graph.LabeledGraph`
is the right shape for the private side (O(1) edits, arbitrary hashable
vertices) but pays for that flexibility on every public-graph traversal:
boxed floats, per-vertex hash tables, and incomparable vertices that
force an ``itertools.count`` tie-breaker into every heap entry.

:class:`FrozenGraph` is the public-side counterpart: vertices are
*interned* to dense ``int`` ids (in source iteration order, so traversal
tie-breaking stays aligned with the dict backend) and adjacency lives in
three flat ``array`` buffers in CSR layout:

* ``indptr``  — ``array('q')`` of length ``n + 1``; vertex ``i``'s
  neighbors occupy positions ``indptr[i]:indptr[i+1]``,
* ``indices`` — ``array('q')`` of neighbor ids (each undirected edge
  appears twice, once per endpoint),
* ``weights`` — ``array('d')`` of the matching edge weights.

Labels are kept per-id (sharing the source's frozensets) and the
inverted label index stores interned-id arrays.  An id↔vertex table
translates at the API boundary, so the *public interface is still
vertex-keyed* — a ``FrozenGraph`` satisfies the read-only
:class:`~repro.graph.protocol.GraphLike` protocol and drops into the
traversal, sketch, portal and semantics layers unchanged.  The int-
specialized fast paths in :mod:`repro.graph.traversal`,
:mod:`repro.graph.pagerank` and :mod:`repro.sketches.base` additionally
consume the raw arrays via :meth:`FrozenGraph.csr` / :meth:`intern` /
:attr:`vertex_table`.

Mutating methods are deliberately absent: accidental writes fail loudly
with ``AttributeError``.  To edit, :meth:`thaw` back to a
:class:`LabeledGraph`.

Shared-memory export
--------------------
Because the whole adjacency payload already lives in flat buffers, a
frozen graph can be *exported* into ``multiprocessing.shared_memory``
segments (:meth:`export_shared`) and re-attached zero-copy in another
process (:meth:`from_shared`): the CSR arrays and the concatenated
label buckets come back as ``memoryview`` casts over the shared pages —
no bytes are copied, only the id↔vertex table and per-id label sets
(arbitrary Python objects) travel through a pickle.  This is what the
process-based shard tier (:mod:`repro.serving.shards`) is built on.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex

__all__ = ["FrozenGraph", "SharedGraphHandle", "freeze"]


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable reference to an exported frozen graph.

    Carries the shared-memory segment names plus the element counts
    needed to cast the (page-rounded) buffers back to their exact
    lengths.  Produced by :meth:`FrozenGraph.export_shared`, consumed by
    :meth:`FrozenGraph.from_shared` in a worker process.
    """

    indptr: str
    indices: str
    weights: str
    labels: str
    meta: str
    num_vertices: int
    nnz: int
    label_entries: int
    meta_nbytes: int


class FrozenGraph:
    """Immutable CSR-backed labeled graph (see module docstring).

    Example
    -------
    >>> g = LabeledGraph.from_edges([(0, 1), (1, 2)], {0: {"a"}, 2: {"b"}})
    >>> fg = FrozenGraph(g)
    >>> fg.num_vertices, fg.num_edges
    (3, 2)
    >>> sorted(fg.vertices_with_label("b"))
    [2]
    >>> fg.weight(0, 1)
    1.0
    """

    __slots__ = (
        "name",
        "_indptr",
        "_indices",
        "_weights",
        "_id_of",
        "_vertex_of",
        "_labels_by_id",
        "_label_ids",
        "_num_edges",
        "_shm",
    )

    def __init__(self, source, name: Optional[str] = None) -> None:
        """Intern ``source`` (any readable graph) into CSR arrays."""
        vertex_of: List[Vertex] = list(source.vertices())
        id_of: Dict[Vertex, int] = {v: i for i, v in enumerate(vertex_of)}
        if len(id_of) != len(vertex_of):
            raise GraphError("source graph yielded duplicate vertices")

        indptr = array("q", [0])
        indices = array("q")
        weights = array("d")
        for v in vertex_of:
            for u, w in source.neighbor_items(v):
                indices.append(id_of[u])
                weights.append(w)
            indptr.append(len(indices))

        labels_by_id: Tuple[FrozenSet[Label], ...] = tuple(
            frozenset(source.labels(v)) for v in vertex_of
        )
        label_ids: Dict[Label, array] = {}
        for i, ls in enumerate(labels_by_id):
            for t in ls:
                label_ids.setdefault(t, array("q")).append(i)

        self.name = name if name is not None else getattr(source, "name", "")
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._id_of = id_of
        self._vertex_of = vertex_of
        self._labels_by_id = labels_by_id
        self._label_ids = label_ids
        self._num_edges = len(indices) // 2

    # ------------------------------------------------------------------
    # interned-id surface (the fast-path API)
    # ------------------------------------------------------------------
    def csr(self) -> Tuple[array, array, array]:
        """The raw ``(indptr, indices, weights)`` CSR arrays."""
        return self._indptr, self._indices, self._weights

    def intern(self, v: Vertex) -> int:
        """The dense id of ``v``; raises :class:`VertexNotFoundError`."""
        try:
            return self._id_of[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    @property
    def vertex_table(self) -> List[Vertex]:
        """The id -> vertex table (do not mutate)."""
        return self._vertex_of

    @property
    def label_table(self) -> Tuple[FrozenSet[Label], ...]:
        """The id -> label-set table."""
        return self._labels_by_id

    def label_ids(self, label: Label) -> array:
        """Interned ids carrying ``label`` (empty array when unused)."""
        bucket = self._label_ids.get(label)
        return bucket if bucket is not None else array("q")

    # ------------------------------------------------------------------
    # vertex set
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._id_of

    def __len__(self) -> int:
        return len(self._vertex_of)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertex_of)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices (interning order)."""
        return iter(self._vertex_of)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._vertex_of)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` as defined in the paper (Sec. II)."""
        return self.num_vertices + self.num_edges

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbors of ``v``."""
        i = self.intern(v)
        indices, vx = self._indices, self._vertex_of
        return (
            vx[indices[pos]]
            for pos in range(self._indptr[i], self._indptr[i + 1])
        )

    def neighbor_items(self, v: Vertex) -> Iterable[Tuple[Vertex, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``v``."""
        i = self.intern(v)
        indices, weights, vx = self._indices, self._weights, self._vertex_of
        return (
            (vx[indices[pos]], weights[pos])
            for pos in range(self._indptr[i], self._indptr[i + 1])
        )

    def degree(self, v: Vertex) -> int:
        """Number of neighbors of ``v``."""
        i = self.intern(v)
        return self._indptr[i + 1] - self._indptr[i]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``(u, v)`` exists (O(deg) scan)."""
        i = self._id_of.get(u)
        j = self._id_of.get(v)
        if i is None or j is None:
            return False
        indices = self._indices
        for pos in range(self._indptr[i], self._indptr[i + 1]):
            if indices[pos] == j:
                return True
        return False

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFoundError`."""
        i = self._id_of.get(u)
        j = self._id_of.get(v)
        if i is not None and j is not None:
            indices = self._indices
            for pos in range(self._indptr[i], self._indptr[i + 1]):
                if indices[pos] == j:
                    return self._weights[pos]
        raise EdgeNotFoundError(u, v)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate each undirected edge once as ``(u, v, weight)``."""
        indptr, indices, weights, vx = (
            self._indptr, self._indices, self._weights, self._vertex_of,
        )
        for i in range(len(vx)):
            for pos in range(indptr[i], indptr[i + 1]):
                j = indices[pos]
                if i < j:
                    yield vx[i], vx[j], weights[pos]

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def labels(self, v: Vertex) -> FrozenSet[Label]:
        """Label set ``L(v)``."""
        return self._labels_by_id[self.intern(v)]

    def has_label(self, v: Vertex, label: Label) -> bool:
        """Whether ``label in L(v)``."""
        return label in self._labels_by_id[self.intern(v)]

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        """All vertices carrying ``label`` (the inverted index lookup)."""
        bucket = self._label_ids.get(label)
        if bucket is None:
            return frozenset()
        vx = self._vertex_of
        return frozenset(vx[i] for i in bucket)

    def label_universe(self) -> FrozenSet[Label]:
        """The label alphabet ``Sigma`` actually used by some vertex."""
        return frozenset(self._label_ids)

    def label_frequency(self, label: Label) -> int:
        """Number of vertices carrying ``label``."""
        bucket = self._label_ids.get(label)
        return len(bucket) if bucket is not None else 0

    def average_labels_per_vertex(self) -> float:
        """Mean ``|L(v)|`` (Tab. V)."""
        if not self._vertex_of:
            return 0.0
        return sum(len(ls) for ls in self._labels_by_id) / len(self._vertex_of)

    # ------------------------------------------------------------------
    # derived graphs / interop
    # ------------------------------------------------------------------
    def thaw(self, name: Optional[str] = None) -> LabeledGraph:
        """An independent mutable :class:`LabeledGraph` with equal content."""
        out = LabeledGraph(name if name is not None else self.name)
        for i, v in enumerate(self._vertex_of):
            out.add_vertex(v, self._labels_by_id[i])
        for u, v, w in self.edges():
            out.add_edge(u, v, w)
        return out

    def copy(self, name: Optional[str] = None) -> "FrozenGraph":
        """Frozen graphs are immutable: sharing is safe, so return self
        (unless a rename forces a shallow re-wrap)."""
        if name is None or name == self.name:
            return self
        return FrozenGraph(self, name=name)

    def subgraph(self, keep: Iterable[Vertex], name: str = "") -> LabeledGraph:
        """Vertex-induced subgraph on ``keep`` as a mutable graph."""
        return self.thaw().subgraph(keep, name)

    def union(
        self, other: Union["FrozenGraph", LabeledGraph], name: str = ""
    ) -> LabeledGraph:
        """Graph union ``⊕`` (materialized; see :meth:`LabeledGraph.union`).

        Combined graphs are per-user and short-lived, so the union is
        always produced on the mutable backend; prefer
        :func:`repro.graph.views.combine_lazy` when a read-only view is
        enough.
        """
        return self.thaw().union(other, name)

    # ------------------------------------------------------------------
    # shared-memory export / attach
    # ------------------------------------------------------------------
    def export_shared(self) -> Tuple[SharedGraphHandle, list]:
        """Export the flat buffers into shared-memory segments.

        Returns ``(handle, segments)``: the picklable
        :class:`SharedGraphHandle` to ship to workers, plus the live
        ``SharedMemory`` objects.  The **caller owns the segments** and
        must ``close()`` + ``unlink()`` them when every attached worker
        is gone (the shard pool does this at shutdown).

        Layout: three segments hold the raw CSR bytes verbatim; a fourth
        holds every inverted-index bucket concatenated into one ``'q'``
        run (bucket boundaries travel in the meta pickle, keyed by label
        in ``repr``-sorted order); the fifth holds a pickle of the
        Python-object remainder — name, id→vertex table, per-id label
        sets, bucket offsets and the edge count.
        """
        from multiprocessing import shared_memory

        concat = array("q")
        label_offsets: Dict[Label, Tuple[int, int]] = {}
        for label in sorted(self._label_ids, key=repr):
            start = len(concat)
            concat.extend(self._label_ids[label])
            label_offsets[label] = (start, len(concat))
        meta = pickle.dumps(
            {
                "name": self.name,
                "vertex_of": self._vertex_of,
                "labels_by_id": self._labels_by_id,
                "label_offsets": label_offsets,
                "num_edges": self._num_edges,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

        segments = []

        def _segment(payload: bytes) -> "shared_memory.SharedMemory":
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(payload))
            )
            shm.buf[: len(payload)] = payload
            segments.append(shm)
            return shm

        try:
            seg_indptr = _segment(bytes(self._indptr))
            seg_indices = _segment(bytes(self._indices))
            seg_weights = _segment(bytes(self._weights))
            seg_labels = _segment(bytes(concat))
            seg_meta = _segment(meta)
        except Exception:
            for shm in segments:
                shm.close()
                shm.unlink()
            raise
        handle = SharedGraphHandle(
            indptr=seg_indptr.name,
            indices=seg_indices.name,
            weights=seg_weights.name,
            labels=seg_labels.name,
            meta=seg_meta.name,
            num_vertices=len(self._vertex_of),
            nnz=len(self._indices),
            label_entries=len(concat),
            meta_nbytes=len(meta),
        )
        return handle, segments

    @classmethod
    def from_shared(cls, handle: SharedGraphHandle) -> "FrozenGraph":
        """Attach to an exported graph zero-copy (worker side).

        The CSR arrays and label buckets come back as ``memoryview``
        casts over the shared pages; only the meta pickle (id↔vertex
        table + label sets) is materialized.  The segments stay alive on
        the instance for the graph's lifetime.

        No ``resource_tracker`` juggling on attach: spawn children share
        the parent's tracker process and its cache is a *set*, so an
        attach-side unregister would cancel the export-side register and
        the owner's eventual ``unlink()`` would miss — attaching leaves
        the registration exactly as the exporter made it (and the tracker
        remains a leak backstop if every process dies uncleanly).
        """
        from multiprocessing import shared_memory

        def _attach(name: str) -> "shared_memory.SharedMemory":
            return shared_memory.SharedMemory(name=name)

        seg_indptr = _attach(handle.indptr)
        seg_indices = _attach(handle.indices)
        seg_weights = _attach(handle.weights)
        seg_labels = _attach(handle.labels)
        seg_meta = _attach(handle.meta)
        meta = pickle.loads(bytes(seg_meta.buf[: handle.meta_nbytes]))
        seg_meta.close()

        item = array("q").itemsize
        n, nnz = handle.num_vertices, handle.nnz
        g = cls.__new__(cls)
        g.name = meta["name"]
        g._indptr = memoryview(seg_indptr.buf)[: (n + 1) * item].cast("q")
        g._indices = memoryview(seg_indices.buf)[: nnz * item].cast("q")
        g._weights = memoryview(seg_weights.buf)[: nnz * item].cast("d")
        labels_view = memoryview(seg_labels.buf)[
            : handle.label_entries * item
        ].cast("q")
        g._label_ids = {
            label: labels_view[s:e]
            for label, (s, e) in meta["label_offsets"].items()
        }
        g._vertex_of = meta["vertex_of"]
        g._id_of = {v: i for i, v in enumerate(g._vertex_of)}
        g._labels_by_id = meta["labels_by_id"]
        g._num_edges = meta["num_edges"]
        g._shm = (seg_indptr, seg_indices, seg_weights, seg_labels)
        return g

    def release_shared(self) -> None:
        """Detach from shared memory, copying the buffers back in-process.

        Workers never need this (process exit releases everything); it
        exists so same-process tests and the pool's local fallback can
        attach, use and cleanly close a shared graph without leaving the
        parent's segments pinned by live ``memoryview`` exports.
        """
        shm = getattr(self, "_shm", None)
        if shm is None:
            return
        self._indptr = array("q", self._indptr)
        self._indices = array("q", self._indices)
        self._weights = array("d", self._weights)
        self._label_ids = {
            label: array("q", bucket)
            for label, bucket in self._label_ids.items()
        }
        for seg in shm:
            seg.close()
        self._shm = None

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def stats(self) -> Mapping[str, float]:
        """Summary statistics — identical shape to :meth:`LabeledGraph.stats`."""
        n = self.num_vertices
        return {
            "num_vertices": float(n),
            "num_edges": float(self._num_edges),
            "num_labels": float(len(self._label_ids)),
            "avg_labels_per_vertex": self.average_labels_per_vertex(),
            "avg_degree": (2.0 * self._num_edges / n) if n else 0.0,
        }

    def nbytes(self) -> int:
        """Size of the flat CSR buffers in bytes (the adjacency payload)."""
        return (
            self._indptr.itemsize * len(self._indptr)
            + self._indices.itemsize * len(self._indices)
            + self._weights.itemsize * len(self._weights)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<FrozenGraph{tag} |V|={self.num_vertices} |E|={self.num_edges} "
            f"|Sigma|={len(self._label_ids)}>"
        )


def freeze(graph, name: Optional[str] = None) -> FrozenGraph:
    """Intern ``graph`` into a :class:`FrozenGraph` (no-op when frozen).

    This is the single entry point the framework uses at the two places
    a public graph becomes immutable: :meth:`PublicIndex.build
    <repro.core.framework.PublicIndex.build>` and
    :meth:`PPKWSService.create_network <repro.service.PPKWSService.create_network>`.
    """
    if isinstance(graph, FrozenGraph):
        return graph
    return FrozenGraph(graph, name=name)
