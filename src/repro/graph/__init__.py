"""Graph substrate: labeled graphs, the public-private model, traversal.

This subpackage is self-contained (no dependency on the rest of
:mod:`repro`) so it can serve as a generic graph toolkit for the keyword
search semantics and the PPKWS framework built on top of it.
"""

from repro.graph.generators import (
    assign_zipf_labels,
    barabasi_albert_graph,
    community_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
    zipf_weights,
)
from repro.graph.frozen import FrozenGraph, freeze
from repro.graph.io import load_graph, save_graph
from repro.graph.labeled_graph import Edge, Label, LabeledGraph, Vertex, path_weight
from repro.graph.pagerank import pagerank, pagerank_csr, pagerank_numpy, pagerank_pure
from repro.graph.protocol import GraphLike
from repro.graph.public_private import PublicPrivateNetwork, combine, portal_nodes
from repro.graph.metrics import (
    approximate_diameter,
    average_shortest_path_length,
    ball_coverage,
    clustering_coefficient,
    degree_distribution,
    degree_skew,
    structural_summary,
)
from repro.graph.views import CombinedView, combine_lazy
from repro.graph.traversal import (
    INF,
    bfs_hops,
    dijkstra,
    dijkstra_ordered,
    dijkstra_with_paths,
    eccentricity,
    multi_source_dijkstra,
    nearest_vertices_with_label,
    shortest_distance,
    shortest_path,
    vertices_within_hops,
)

__all__ = [
    "CombinedView",
    "Edge",
    "FrozenGraph",
    "GraphLike",
    "approximate_diameter",
    "average_shortest_path_length",
    "ball_coverage",
    "clustering_coefficient",
    "degree_distribution",
    "degree_skew",
    "structural_summary",
    "INF",
    "Label",
    "LabeledGraph",
    "PublicPrivateNetwork",
    "Vertex",
    "assign_zipf_labels",
    "barabasi_albert_graph",
    "bfs_hops",
    "combine",
    "combine_lazy",
    "community_graph",
    "dijkstra",
    "dijkstra_ordered",
    "dijkstra_with_paths",
    "eccentricity",
    "erdos_renyi_graph",
    "freeze",
    "load_graph",
    "multi_source_dijkstra",
    "nearest_vertices_with_label",
    "pagerank",
    "pagerank_csr",
    "pagerank_numpy",
    "pagerank_pure",
    "path_weight",
    "portal_nodes",
    "save_graph",
    "shortest_distance",
    "shortest_path",
    "vertices_within_hops",
    "watts_strogatz_graph",
    "zipf_weights",
]
