"""PageRank over any graph backend.

PADS (paper Sec. V-A) ranks vertices by PageRank rather than by random
values: high-PageRank vertices lie on many shortest paths and make good
sketch centers.  The paper says "we employ any efficient algorithms to
obtain the PageRank" — we provide three interchangeable backends:

* a pure-dict power iteration (no dependencies, good for small graphs and
  easy to verify),
* a numpy backend (vectorized; flattens adjacency through the generic
  read API), and
* a CSR backend for :class:`~repro.graph.frozen.FrozenGraph` (array
  sweep straight over the interned ``indptr``/``indices`` buffers — no
  per-edge Python loop at all).

All treat the undirected graph as a random walk with uniform transition
probability over neighbors, damping ``alpha`` and uniform teleport, and
visit edges in the same order, so their results agree to within float
rounding (bit-identical between the numpy and CSR backends).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graph.frozen import FrozenGraph
from repro.graph.labeled_graph import Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.protocol import GraphLike

__all__ = ["pagerank", "pagerank_pure", "pagerank_numpy", "pagerank_csr"]

_NUMPY_THRESHOLD = 2000


def pagerank(
    graph: "GraphLike",
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
    backend: Optional[str] = None,
) -> Dict[Vertex, float]:
    """PageRank scores ``pr: V -> [0, 1]``, summing to 1.

    Parameters
    ----------
    alpha:
        Damping factor in (0, 1).
    backend:
        ``"pure"``, ``"numpy"``, ``"csr"`` or ``None`` (auto-select by
        graph size and backend; frozen graphs above the size threshold
        use the CSR sweep).
    """
    if not 0.0 < alpha < 1.0:
        raise GraphError(f"alpha must be in (0, 1), got {alpha}")
    if graph.num_vertices == 0:
        return {}
    if backend is None:
        if graph.num_vertices < _NUMPY_THRESHOLD:
            backend = "pure"
        elif isinstance(graph, FrozenGraph):
            backend = "csr"
        else:
            backend = "numpy"
    if backend == "pure":
        return pagerank_pure(graph, alpha, max_iter, tol)
    if backend == "numpy":
        return pagerank_numpy(graph, alpha, max_iter, tol)
    if backend == "csr":
        return pagerank_csr(graph, alpha, max_iter, tol)
    raise GraphError(f"unknown pagerank backend {backend!r}")


def pagerank_pure(
    graph: "GraphLike",
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> Dict[Vertex, float]:
    """Dictionary-based power iteration (reference implementation).

    On a :class:`FrozenGraph` the same iteration runs over interned id
    lists (:func:`_pagerank_pure_frozen`); every float operation happens
    in the same order, so the scores are bit-identical across backends.
    """
    if isinstance(graph, FrozenGraph):
        return _pagerank_pure_frozen(graph, alpha, max_iter, tol)
    n = graph.num_vertices
    rank = {v: 1.0 / n for v in graph.vertices()}
    base = (1.0 - alpha) / n
    for _ in range(max_iter):
        nxt = {v: 0.0 for v in rank}
        dangling_mass = 0.0
        for v, r in rank.items():
            deg = graph.degree(v)
            if deg == 0:
                dangling_mass += r
                continue
            share = alpha * r / deg
            for u in graph.neighbors(v):
                nxt[u] += share
        spread = base + alpha * dangling_mass / n
        delta = 0.0
        for v in nxt:
            nxt[v] += spread
            delta += abs(nxt[v] - rank[v])
        rank = nxt
        if delta < tol:
            break
    return rank


def _pagerank_pure_frozen(
    graph: FrozenGraph,
    alpha: float,
    max_iter: int,
    tol: float,
) -> Dict[Vertex, float]:
    """:func:`pagerank_pure` over interned ids and flat adjacency lists.

    Mirrors the dict implementation operation-for-operation (interning
    order equals the source dict's iteration order, and neighbor order is
    preserved by construction), so the returned floats are identical.
    The transient ``tolist`` copies exist only for the duration of the
    call — plain-list indexing is markedly faster than ``array`` access.
    """
    n = graph.num_vertices
    indptr_a, indices_a, _ = graph.csr()
    indptr = indptr_a.tolist()
    indices = indices_a.tolist()
    rank = [1.0 / n] * n
    base = (1.0 - alpha) / n
    for _ in range(max_iter):
        nxt = [0.0] * n
        dangling_mass = 0.0
        for i in range(n):
            start, end = indptr[i], indptr[i + 1]
            if start == end:
                dangling_mass += rank[i]
                continue
            share = alpha * rank[i] / (end - start)
            for pos in range(start, end):
                nxt[indices[pos]] += share
        spread = base + alpha * dangling_mass / n
        delta = 0.0
        for i in range(n):
            x = nxt[i] + spread
            nxt[i] = x
            delta += abs(x - rank[i])
        rank = nxt
        if delta < tol:
            break
    vx = graph.vertex_table
    return {vx[i]: rank[i] for i in range(n)}


def _power_iterate(
    src: np.ndarray,
    dst: np.ndarray,
    deg: np.ndarray,
    n: int,
    alpha: float,
    max_iter: int,
    tol: float,
) -> np.ndarray:
    """Shared edge-array power iteration for the vectorized backends."""
    rank = np.full(n, 1.0 / n)
    dangling = deg == 0
    safe_deg = np.where(dangling, 1.0, deg)
    for _ in range(max_iter):
        contrib = alpha * rank / safe_deg
        nxt = np.zeros(n)
        np.add.at(nxt, dst, contrib[src])
        dangling_mass = rank[dangling].sum()
        nxt += (1.0 - alpha) / n + alpha * dangling_mass / n
        if np.abs(nxt - rank).sum() < tol:
            rank = nxt
            break
        rank = nxt
    return rank


def pagerank_numpy(
    graph: "GraphLike",
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> Dict[Vertex, float]:
    """Vectorized power iteration over flattened adjacency arrays."""
    verts = list(graph.vertices())
    index = {v: i for i, v in enumerate(verts)}
    n = len(verts)

    # Flatten adjacency into (src, dst) arrays; undirected edges appear
    # twice, once per direction, which is exactly the random-walk matrix.
    srcs = []
    dsts = []
    for v in verts:
        vi = index[v]
        for u in graph.neighbors(v):
            srcs.append(vi)
            dsts.append(index[u])
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    deg = np.zeros(n, dtype=np.float64)
    np.add.at(deg, src, 1.0)

    rank = _power_iterate(src, dst, deg, n, alpha, max_iter, tol)
    return {v: float(rank[index[v]]) for v in verts}


def pagerank_csr(
    graph: FrozenGraph,
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> Dict[Vertex, float]:
    """Array sweep straight over the frozen CSR buffers.

    Equivalent to :func:`pagerank_numpy` (same edge order, so identical
    rounding) but skips the per-edge Python flattening loop: ``indices``
    *is* the destination array, and the source array is one
    ``np.repeat`` over the ``indptr`` gaps.
    """
    if not isinstance(graph, FrozenGraph):
        raise GraphError("the 'csr' pagerank backend requires a FrozenGraph")
    n = graph.num_vertices
    indptr_a, indices_a, _ = graph.csr()
    indptr = np.frombuffer(indptr_a, dtype=np.int64)
    if len(indices_a):
        dst = np.frombuffer(indices_a, dtype=np.int64)
    else:
        dst = np.zeros(0, dtype=np.int64)
    gaps = np.diff(indptr)
    src = np.repeat(np.arange(n, dtype=np.int64), gaps)
    deg = gaps.astype(np.float64)

    rank = _power_iterate(src, dst, deg, n, alpha, max_iter, tol)
    vx = graph.vertex_table
    return {vx[i]: float(rank[i]) for i in range(n)}
