"""PageRank over :class:`LabeledGraph`.

PADS (paper Sec. V-A) ranks vertices by PageRank rather than by random
values: high-PageRank vertices lie on many shortest paths and make good
sketch centers.  The paper says "we employ any efficient algorithms to
obtain the PageRank" — we provide two interchangeable backends:

* a pure-dict power iteration (no dependencies, good for small graphs and
  easy to verify), and
* a numpy backend (vectorized, used automatically above a size threshold).

Both treat the undirected graph as a random walk with uniform transition
probability over neighbors, damping ``alpha`` and uniform teleport.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph, Vertex

__all__ = ["pagerank", "pagerank_pure", "pagerank_numpy"]

_NUMPY_THRESHOLD = 2000


def pagerank(
    graph: LabeledGraph,
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
    backend: Optional[str] = None,
) -> Dict[Vertex, float]:
    """PageRank scores ``pr: V -> [0, 1]``, summing to 1.

    Parameters
    ----------
    alpha:
        Damping factor in (0, 1).
    backend:
        ``"pure"``, ``"numpy"`` or ``None`` (auto-select by graph size).
    """
    if not 0.0 < alpha < 1.0:
        raise GraphError(f"alpha must be in (0, 1), got {alpha}")
    if graph.num_vertices == 0:
        return {}
    if backend is None:
        backend = "numpy" if graph.num_vertices >= _NUMPY_THRESHOLD else "pure"
    if backend == "pure":
        return pagerank_pure(graph, alpha, max_iter, tol)
    if backend == "numpy":
        return pagerank_numpy(graph, alpha, max_iter, tol)
    raise GraphError(f"unknown pagerank backend {backend!r}")


def pagerank_pure(
    graph: LabeledGraph,
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> Dict[Vertex, float]:
    """Dictionary-based power iteration (reference implementation)."""
    n = graph.num_vertices
    rank = {v: 1.0 / n for v in graph.vertices()}
    base = (1.0 - alpha) / n
    for _ in range(max_iter):
        nxt = {v: 0.0 for v in rank}
        dangling_mass = 0.0
        for v, r in rank.items():
            deg = graph.degree(v)
            if deg == 0:
                dangling_mass += r
                continue
            share = alpha * r / deg
            for u in graph.neighbors(v):
                nxt[u] += share
        spread = base + alpha * dangling_mass / n
        delta = 0.0
        for v in nxt:
            nxt[v] += spread
            delta += abs(nxt[v] - rank[v])
        rank = nxt
        if delta < tol:
            break
    return rank


def pagerank_numpy(
    graph: LabeledGraph,
    alpha: float = 0.85,
    max_iter: int = 100,
    tol: float = 1e-8,
) -> Dict[Vertex, float]:
    """Vectorized power iteration using flat adjacency arrays."""
    verts = list(graph.vertices())
    index = {v: i for i, v in enumerate(verts)}
    n = len(verts)

    # Flatten adjacency into (src, dst) arrays; undirected edges appear
    # twice, once per direction, which is exactly the random-walk matrix.
    srcs = []
    dsts = []
    for v in verts:
        vi = index[v]
        for u in graph.neighbors(v):
            srcs.append(vi)
            dsts.append(index[u])
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    deg = np.zeros(n, dtype=np.float64)
    np.add.at(deg, src, 1.0)

    rank = np.full(n, 1.0 / n)
    dangling = deg == 0
    safe_deg = np.where(dangling, 1.0, deg)
    for _ in range(max_iter):
        contrib = alpha * rank / safe_deg
        nxt = np.zeros(n)
        np.add.at(nxt, dst, contrib[src])
        dangling_mass = rank[dangling].sum()
        nxt += (1.0 - alpha) / n + alpha * dangling_mass / n
        if np.abs(nxt - rank).sum() < tol:
            rank = nxt
            break
        rank = nxt
    return {v: float(rank[index[v]]) for v in verts}
