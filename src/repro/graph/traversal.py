"""Shortest-path and traversal primitives over :class:`LabeledGraph`.

Everything in PPKWS is distance-driven (Sec. II of the paper: "the answers
of all the query semantics involve the shortest distance between the nodes
of the answer"), so these routines are the hot path of both the baseline
algorithms and the framework itself.  They are implemented with plain
binary heaps (``heapq``) and lazy deletion, which in CPython outperforms
fancier decrease-key structures for the graph sizes we target.

The sweeps accept an optional ``budget`` (any object with a
``checkpoint()`` method, canonically
:class:`repro.core.budget.QueryBudget`) charged one expansion per heap
pop; the budget raises a :class:`~repro.exceptions.BudgetError` when the
query's deadline or expansion cap is exceeded.  ``budget=None`` (the
default) costs one ``is not None`` test per pop.  The type is only
imported for checking to keep this layer free of :mod:`repro.core`
imports.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import LabeledGraph, Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.budget import QueryBudget

__all__ = [
    "INF",
    "dijkstra",
    "dijkstra_with_paths",
    "dijkstra_ordered",
    "multi_source_dijkstra",
    "shortest_path",
    "shortest_distance",
    "bfs_hops",
    "vertices_within_hops",
    "eccentricity",
    "nearest_vertices_with_label",
]

INF = float("inf")


def _check_source(graph: LabeledGraph, source: Vertex) -> None:
    if source not in graph:
        raise VertexNotFoundError(source)


def dijkstra(
    graph: LabeledGraph,
    source: Vertex,
    cutoff: Optional[float] = None,
    targets: Optional[Set[Vertex]] = None,
    budget: Optional["QueryBudget"] = None,
) -> Dict[Vertex, float]:
    """Single-source shortest distances from ``source``.

    Parameters
    ----------
    cutoff:
        Stop expanding once the settled distance exceeds ``cutoff``
        (distances strictly greater than the cutoff are not reported).
    targets:
        If given, stop as soon as every target is settled.  The returned
        map still contains every settled vertex (callers often reuse it).
    budget:
        Optional query budget charged one expansion per heap pop; raises
        a :class:`~repro.exceptions.BudgetError` on expiry.
    """
    _check_source(graph, source)
    dist: Dict[Vertex, float] = {}
    remaining = set(targets) if targets is not None else None
    counter = itertools.count()  # heap tie-break: vertices may not be comparable
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[v] = d
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for u, w in graph.neighbor_items(v):
            if u not in dist:
                nd = d + w
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, next(counter), u))
    return dist


def dijkstra_with_paths(
    graph: LabeledGraph,
    source: Vertex,
    cutoff: Optional[float] = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Shortest distances plus predecessor links (for path reconstruction)."""
    _check_source(graph, source)
    dist: Dict[Vertex, float] = {}
    pred: Dict[Vertex, Optional[Vertex]] = {source: None}
    tentative: Dict[Vertex, float] = {source: 0.0}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[v] = d
        for u, w in graph.neighbor_items(v):
            if u in dist:
                continue
            nd = d + w
            if (cutoff is None or nd <= cutoff) and nd < tentative.get(u, INF):
                tentative[u] = nd
                pred[u] = v
                heapq.heappush(heap, (nd, next(counter), u))
    return dist, pred


def dijkstra_ordered(
    graph: LabeledGraph,
    source: Vertex,
    cutoff: Optional[float] = None,
    budget: Optional["QueryBudget"] = None,
) -> Iterator[Tuple[Vertex, float]]:
    """Yield ``(vertex, distance)`` in non-decreasing distance order.

    This is the *Dijkstra order* used to define Dijkstra ranks in the
    sketch construction (paper Sec. V-A); it is also the workhorse of the
    k-nk semantic, which consumes vertices lazily until k matches appear.
    ``budget`` (if given) is charged one expansion per heap pop.
    """
    _check_source(graph, source)
    settled: Set[Vertex] = set()
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in settled:
            continue
        if cutoff is not None and d > cutoff:
            return
        settled.add(v)
        yield v, d
        for u, w in graph.neighbor_items(v):
            if u not in settled:
                nd = d + w
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, next(counter), u))


def multi_source_dijkstra(
    graph: LabeledGraph,
    sources: Iterable[Vertex],
    cutoff: Optional[float] = None,
    budget: Optional["QueryBudget"] = None,
) -> Dict[Vertex, float]:
    """Shortest distance from the *nearest* of ``sources`` to each vertex.

    Used for keyword-to-vertex distances: ``d(v, t) = min over u with
    t in L(u) of d(v, u)`` is a multi-source search seeded at the
    keyword's inverted-index bucket.  ``budget`` (if given) is charged
    one expansion per heap pop.
    """
    dist: Dict[Vertex, float] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = []
    for s in sources:
        _check_source(graph, s)
        heapq.heappush(heap, (0.0, next(counter), s))
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[v] = d
        for u, w in graph.neighbor_items(v):
            if u not in dist:
                nd = d + w
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, next(counter), u))
    return dist


def shortest_distance(
    graph: LabeledGraph, source: Vertex, target: Vertex
) -> float:
    """Exact shortest distance ``d(source, target)``; ``inf`` if unreachable."""
    if target not in graph:
        raise VertexNotFoundError(target)
    dist = dijkstra(graph, source, targets={target})
    return dist.get(target, INF)


def shortest_path(
    graph: LabeledGraph, source: Vertex, target: Vertex
) -> Optional[List[Vertex]]:
    """An actual shortest path as a vertex list, or ``None`` if unreachable."""
    if target not in graph:
        raise VertexNotFoundError(target)
    _check_source(graph, source)
    dist: Dict[Vertex, float] = {}
    pred: Dict[Vertex, Vertex] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    tentative: Dict[Vertex, float] = {source: 0.0}
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        if v == target:
            break
        for u, w in graph.neighbor_items(v):
            if u in dist:
                continue
            nd = d + w
            if nd < tentative.get(u, INF):
                tentative[u] = nd
                pred[u] = v
                heapq.heappush(heap, (nd, next(counter), u))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def bfs_hops(
    graph: LabeledGraph,
    source: Vertex,
    max_hops: Optional[int] = None,
) -> Dict[Vertex, int]:
    """Hop counts (unweighted BFS distance) from ``source``.

    AComplete for Blinks expands portals "up to x hops" on the public
    graph (paper Algo 5) — this is that traversal.
    """
    _check_source(graph, source)
    hops = {source: 0}
    frontier = [source]
    level = 0
    while frontier and (max_hops is None or level < max_hops):
        level += 1
        nxt: List[Vertex] = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in hops:
                    hops[u] = level
                    nxt.append(u)
        frontier = nxt
    return hops


def vertices_within_hops(
    graph: LabeledGraph, source: Vertex, max_hops: int
) -> Set[Vertex]:
    """The ball of radius ``max_hops`` (in hops) around ``source``."""
    return set(bfs_hops(graph, source, max_hops))


def eccentricity(graph: LabeledGraph, source: Vertex) -> float:
    """Largest finite shortest distance from ``source``."""
    dist = dijkstra(graph, source)
    return max(dist.values()) if dist else 0.0


def nearest_vertices_with_label(
    graph: LabeledGraph,
    source: Vertex,
    label: str,
    k: int = 1,
    cutoff: Optional[float] = None,
    accept: Optional[Callable[[Vertex], bool]] = None,
    budget: Optional["QueryBudget"] = None,
) -> List[Tuple[Vertex, float]]:
    """The ``k`` nearest vertices to ``source`` carrying ``label``.

    This is the exact (index-free) k-nk primitive: expand Dijkstra from
    ``source`` and collect matches lazily.  ``accept`` can further filter
    candidates (used by PEval to also admit portal nodes).
    """
    matches: List[Tuple[Vertex, float]] = []
    for v, d in dijkstra_ordered(graph, source, cutoff=cutoff, budget=budget):
        is_match = graph.has_label(v, label)
        if accept is not None:
            is_match = is_match or accept(v)
        if is_match:
            matches.append((v, d))
            if len(matches) >= k:
                break
    return matches
