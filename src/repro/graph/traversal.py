"""Shortest-path and traversal primitives over any graph backend.

Everything in PPKWS is distance-driven (Sec. II of the paper: "the answers
of all the query semantics involve the shortest distance between the nodes
of the answer"), so these routines are the hot path of both the baseline
algorithms and the framework itself.  They are implemented with plain
binary heaps (``heapq``) and lazy deletion, which in CPython outperforms
fancier decrease-key structures for the graph sizes we target.

Every routine accepts any :class:`~repro.graph.protocol.GraphLike`
backend.  For the dict backend (and the lazy combined views) vertices may
be arbitrary incomparable hashables, so heap entries carry an
``itertools.count`` tie-breaker.  When the graph is a
:class:`~repro.graph.frozen.FrozenGraph` each routine dispatches to an
int-specialized fast path instead: vertices are dense comparable ids, so
heap entries are bare ``(distance, id)`` pairs, and neighbor expansion is
a flat scan of the CSR ``indptr``/``indices``/``weights`` arrays.  Results
are translated back to vertex keys at the boundary, so callers cannot
tell the backends apart (distances are bit-identical; only tie order
among equidistant vertices may differ).

The sweeps accept an optional ``budget`` (any object with a
``checkpoint()`` method, canonically
:class:`repro.core.budget.QueryBudget`) charged one expansion per heap
pop; the budget raises a :class:`~repro.exceptions.BudgetError` when the
query's deadline or expansion cap is exceeded.  ``budget=None`` (the
default) costs one ``is not None`` test per pop.  The type is only
imported for checking to keep this layer free of :mod:`repro.core`
imports.
"""

from __future__ import annotations

import heapq
import itertools
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import VertexNotFoundError
from repro.graph.frozen import FrozenGraph
from repro.graph.labeled_graph import Vertex

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.budget import QueryBudget
    from repro.graph.protocol import GraphLike

__all__ = [
    "INF",
    "dijkstra",
    "dijkstra_with_paths",
    "dijkstra_ordered",
    "multi_source_dijkstra",
    "shortest_path",
    "shortest_distance",
    "bfs_hops",
    "vertices_within_hops",
    "eccentricity",
    "nearest_vertices_with_label",
]

INF = float("inf")


def _check_source(graph: "GraphLike", source: Vertex) -> None:
    if source not in graph:
        raise VertexNotFoundError(source)


# ----------------------------------------------------------------------
# int-specialized fast paths (FrozenGraph)
# ----------------------------------------------------------------------
#: Sentinel id for a requested target that is absent from the graph; it
#: can never be settled, which reproduces the generic behavior (the sweep
#: simply runs to exhaustion instead of stopping early).
_ABSENT = -1


def _frozen_dijkstra(
    graph: FrozenGraph,
    source: Vertex,
    cutoff: Optional[float],
    targets: Optional[Set[Vertex]],
    budget: Optional["QueryBudget"],
) -> Dict[Vertex, float]:
    src = graph.intern(source)
    indptr, indices, weights = graph.csr()
    dist: Dict[int, float] = {}
    remaining: Optional[Set[int]] = None
    if targets is not None:
        remaining = set()
        for t in targets:
            remaining.add(graph.intern(t) if t in graph else _ABSENT)
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, i = heapq.heappop(heap)
        if i in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[i] = d
        if remaining is not None:
            remaining.discard(i)
            if not remaining:
                break
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j not in dist:
                nd = d + weights[pos]
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, j))
    vx = graph.vertex_table
    return {vx[i]: d for i, d in dist.items()}


def _frozen_dijkstra_with_paths(
    graph: FrozenGraph,
    source: Vertex,
    cutoff: Optional[float],
    budget: Optional["QueryBudget"],
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    src = graph.intern(source)
    indptr, indices, weights = graph.csr()
    dist: Dict[int, float] = {}
    pred: Dict[int, int] = {src: -1}
    tentative: Dict[int, float] = {src: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, i = heapq.heappop(heap)
        if i in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[i] = d
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j in dist:
                continue
            nd = d + weights[pos]
            if (cutoff is None or nd <= cutoff) and nd < tentative.get(j, INF):
                tentative[j] = nd
                pred[j] = i
                heapq.heappush(heap, (nd, j))
    vx = graph.vertex_table
    return (
        {vx[i]: d for i, d in dist.items()},
        {vx[i]: (vx[p] if p >= 0 else None) for i, p in pred.items()},
    )


def _frozen_dijkstra_ordered(
    graph: FrozenGraph,
    source: Vertex,
    cutoff: Optional[float],
    budget: Optional["QueryBudget"],
) -> Iterator[Tuple[Vertex, float]]:
    src = graph.intern(source)
    indptr, indices, weights = graph.csr()
    vx = graph.vertex_table
    settled: Set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, src)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, i = heapq.heappop(heap)
        if i in settled:
            continue
        if cutoff is not None and d > cutoff:
            return
        settled.add(i)
        yield vx[i], d
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j not in settled:
                nd = d + weights[pos]
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, j))


def _frozen_multi_source(
    graph: FrozenGraph,
    sources: Iterable[Vertex],
    cutoff: Optional[float],
    budget: Optional["QueryBudget"],
) -> Dict[Vertex, float]:
    indptr, indices, weights = graph.csr()
    heap: List[Tuple[float, int]] = [(0.0, graph.intern(s)) for s in sources]
    heapq.heapify(heap)
    dist: Dict[int, float] = {}
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, i = heapq.heappop(heap)
        if i in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[i] = d
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j not in dist:
                nd = d + weights[pos]
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, j))
    vx = graph.vertex_table
    return {vx[i]: d for i, d in dist.items()}


def _frozen_shortest_path(
    graph: FrozenGraph,
    source: Vertex,
    target: Vertex,
    budget: Optional["QueryBudget"],
) -> Optional[List[Vertex]]:
    src = graph.intern(source)
    dst = graph.intern(target)
    indptr, indices, weights = graph.csr()
    dist: Dict[int, float] = {}
    pred: Dict[int, int] = {}
    tentative: Dict[int, float] = {src: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, src)]
    found = False
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, i = heapq.heappop(heap)
        if i in dist:
            continue
        dist[i] = d
        if i == dst:
            found = True
            break
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if j in dist:
                continue
            nd = d + weights[pos]
            if nd < tentative.get(j, INF):
                tentative[j] = nd
                pred[j] = i
                heapq.heappush(heap, (nd, j))
    if not found:
        return None
    ids = [dst]
    while ids[-1] != src:
        ids.append(pred[ids[-1]])
    vx = graph.vertex_table
    return [vx[i] for i in reversed(ids)]


def _frozen_bfs_hops(
    graph: FrozenGraph, source: Vertex, max_hops: Optional[int]
) -> Dict[Vertex, int]:
    src = graph.intern(source)
    indptr, indices, _ = graph.csr()
    hops: Dict[int, int] = {src: 0}
    frontier = [src]
    level = 0
    while frontier and (max_hops is None or level < max_hops):
        level += 1
        nxt: List[int] = []
        for i in frontier:
            for pos in range(indptr[i], indptr[i + 1]):
                j = indices[pos]
                if j not in hops:
                    hops[j] = level
                    nxt.append(j)
        frontier = nxt
    vx = graph.vertex_table
    return {vx[i]: h for i, h in hops.items()}


# ----------------------------------------------------------------------
# public API (backend-dispatching)
# ----------------------------------------------------------------------
def dijkstra(
    graph: "GraphLike",
    source: Vertex,
    cutoff: Optional[float] = None,
    targets: Optional[Set[Vertex]] = None,
    budget: Optional["QueryBudget"] = None,
) -> Dict[Vertex, float]:
    """Single-source shortest distances from ``source``.

    Parameters
    ----------
    cutoff:
        Stop expanding once the settled distance exceeds ``cutoff``
        (distances strictly greater than the cutoff are not reported).
    targets:
        If given, stop as soon as every target is settled.  The returned
        map still contains every settled vertex (callers often reuse it).
    budget:
        Optional query budget charged one expansion per heap pop; raises
        a :class:`~repro.exceptions.BudgetError` on expiry.
    """
    if isinstance(graph, FrozenGraph):
        return _frozen_dijkstra(graph, source, cutoff, targets, budget)
    _check_source(graph, source)
    dist: Dict[Vertex, float] = {}
    remaining = set(targets) if targets is not None else None
    counter = itertools.count()  # heap tie-break: vertices may not be comparable
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[v] = d
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for u, w in graph.neighbor_items(v):
            if u not in dist:
                nd = d + w
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, next(counter), u))
    return dist


def dijkstra_with_paths(
    graph: "GraphLike",
    source: Vertex,
    cutoff: Optional[float] = None,
    budget: Optional["QueryBudget"] = None,
) -> Tuple[Dict[Vertex, float], Dict[Vertex, Optional[Vertex]]]:
    """Shortest distances plus predecessor links (for path reconstruction).

    ``budget`` (if given) is charged one expansion per heap pop.
    """
    if isinstance(graph, FrozenGraph):
        return _frozen_dijkstra_with_paths(graph, source, cutoff, budget)
    _check_source(graph, source)
    dist: Dict[Vertex, float] = {}
    pred: Dict[Vertex, Optional[Vertex]] = {source: None}
    tentative: Dict[Vertex, float] = {source: 0.0}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[v] = d
        for u, w in graph.neighbor_items(v):
            if u in dist:
                continue
            nd = d + w
            if (cutoff is None or nd <= cutoff) and nd < tentative.get(u, INF):
                tentative[u] = nd
                pred[u] = v
                heapq.heappush(heap, (nd, next(counter), u))
    return dist, pred


def dijkstra_ordered(
    graph: "GraphLike",
    source: Vertex,
    cutoff: Optional[float] = None,
    budget: Optional["QueryBudget"] = None,
) -> Iterator[Tuple[Vertex, float]]:
    """Yield ``(vertex, distance)`` in non-decreasing distance order.

    This is the *Dijkstra order* used to define Dijkstra ranks in the
    sketch construction (paper Sec. V-A); it is also the workhorse of the
    k-nk semantic, which consumes vertices lazily until k matches appear.
    ``budget`` (if given) is charged one expansion per heap pop.
    """
    if isinstance(graph, FrozenGraph):
        return _frozen_dijkstra_ordered(graph, source, cutoff, budget)
    return _dict_dijkstra_ordered(graph, source, cutoff, budget)


def _dict_dijkstra_ordered(
    graph: "GraphLike",
    source: Vertex,
    cutoff: Optional[float],
    budget: Optional["QueryBudget"],
) -> Iterator[Tuple[Vertex, float]]:
    _check_source(graph, source)
    settled: Set[Vertex] = set()
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in settled:
            continue
        if cutoff is not None and d > cutoff:
            return
        settled.add(v)
        yield v, d
        for u, w in graph.neighbor_items(v):
            if u not in settled:
                nd = d + w
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, next(counter), u))


def multi_source_dijkstra(
    graph: "GraphLike",
    sources: Iterable[Vertex],
    cutoff: Optional[float] = None,
    budget: Optional["QueryBudget"] = None,
) -> Dict[Vertex, float]:
    """Shortest distance from the *nearest* of ``sources`` to each vertex.

    Used for keyword-to-vertex distances: ``d(v, t) = min over u with
    t in L(u) of d(v, u)`` is a multi-source search seeded at the
    keyword's inverted-index bucket.  ``budget`` (if given) is charged
    one expansion per heap pop.
    """
    if isinstance(graph, FrozenGraph):
        return _frozen_multi_source(graph, sources, cutoff, budget)
    dist: Dict[Vertex, float] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = []
    for s in sources:
        _check_source(graph, s)
        heapq.heappush(heap, (0.0, next(counter), s))
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        if cutoff is not None and d > cutoff:
            break
        dist[v] = d
        for u, w in graph.neighbor_items(v):
            if u not in dist:
                nd = d + w
                if cutoff is None or nd <= cutoff:
                    heapq.heappush(heap, (nd, next(counter), u))
    return dist


def shortest_distance(
    graph: "GraphLike", source: Vertex, target: Vertex
) -> float:
    """Exact shortest distance ``d(source, target)``; ``inf`` if unreachable."""
    if target not in graph:
        raise VertexNotFoundError(target)
    dist = dijkstra(graph, source, targets={target})
    return dist.get(target, INF)


def shortest_path(
    graph: "GraphLike",
    source: Vertex,
    target: Vertex,
    budget: Optional["QueryBudget"] = None,
) -> Optional[List[Vertex]]:
    """An actual shortest path as a vertex list, or ``None`` if unreachable.

    ``budget`` (if given) is charged one expansion per heap pop — answer
    materialization (PP-BANKS tree reconstruction) passes the query's
    budget through here so it respects deadlines like every other step.
    """
    if target not in graph:
        raise VertexNotFoundError(target)
    if isinstance(graph, FrozenGraph):
        return _frozen_shortest_path(graph, source, target, budget)
    _check_source(graph, source)
    dist: Dict[Vertex, float] = {}
    pred: Dict[Vertex, Vertex] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Vertex]] = [(0.0, next(counter), source)]
    tentative: Dict[Vertex, float] = {source: 0.0}
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        if v == target:
            break
        for u, w in graph.neighbor_items(v):
            if u in dist:
                continue
            nd = d + w
            if nd < tentative.get(u, INF):
                tentative[u] = nd
                pred[u] = v
                heapq.heappush(heap, (nd, next(counter), u))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(pred[path[-1]])
    path.reverse()
    return path


def bfs_hops(
    graph: "GraphLike",
    source: Vertex,
    max_hops: Optional[int] = None,
) -> Dict[Vertex, int]:
    """Hop counts (unweighted BFS distance) from ``source``.

    AComplete for Blinks expands portals "up to x hops" on the public
    graph (paper Algo 5) — this is that traversal.
    """
    if isinstance(graph, FrozenGraph):
        return _frozen_bfs_hops(graph, source, max_hops)
    _check_source(graph, source)
    hops = {source: 0}
    frontier = [source]
    level = 0
    while frontier and (max_hops is None or level < max_hops):
        level += 1
        nxt: List[Vertex] = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in hops:
                    hops[u] = level
                    nxt.append(u)
        frontier = nxt
    return hops


def vertices_within_hops(
    graph: "GraphLike", source: Vertex, max_hops: int
) -> Set[Vertex]:
    """The ball of radius ``max_hops`` (in hops) around ``source``."""
    return set(bfs_hops(graph, source, max_hops))


def eccentricity(graph: "GraphLike", source: Vertex) -> float:
    """Largest finite shortest distance from ``source``."""
    dist = dijkstra(graph, source)
    return max(dist.values()) if dist else 0.0


def nearest_vertices_with_label(
    graph: "GraphLike",
    source: Vertex,
    label: str,
    k: int = 1,
    cutoff: Optional[float] = None,
    accept: Optional[Callable[[Vertex], bool]] = None,
    budget: Optional["QueryBudget"] = None,
) -> List[Tuple[Vertex, float]]:
    """The ``k`` nearest vertices to ``source`` carrying ``label``.

    This is the exact (index-free) k-nk primitive: expand Dijkstra from
    ``source`` and collect matches lazily.  ``accept`` can further filter
    candidates (used by PEval to also admit portal nodes).
    """
    matches: List[Tuple[Vertex, float]] = []
    for v, d in dijkstra_ordered(graph, source, cutoff=cutoff, budget=budget):
        is_match = graph.has_label(v, label)
        if accept is not None:
            is_match = is_match or accept(v)
        if is_match:
            matches.append((v, d))
            if len(matches) >= k:
                break
    return matches
