"""Structural graph metrics used to characterize the dataset stand-ins.

DESIGN.md §4's substitution argument rests on measurable structure —
degree distribution, diameter (locality!), clustering — so the library
ships the measurements: they feed the Tab.-V-style dataset reports and
let a user verify that their own graphs sit in the regime where PPKWS's
locality assumptions hold.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Optional

from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import bfs_hops, dijkstra

__all__ = [
    "degree_distribution",
    "degree_skew",
    "approximate_diameter",
    "average_shortest_path_length",
    "clustering_coefficient",
    "ball_coverage",
    "structural_summary",
]


def degree_distribution(graph: LabeledGraph) -> Dict[int, int]:
    """Histogram ``degree -> vertex count``."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def degree_skew(graph: LabeledGraph) -> float:
    """Max degree over mean degree (1.0 = regular, large = hubby)."""
    if graph.num_vertices == 0:
        return 0.0
    degrees = [graph.degree(v) for v in graph.vertices()]
    mean = sum(degrees) / len(degrees)
    return (max(degrees) / mean) if mean else 0.0


def approximate_diameter(
    graph: LabeledGraph, sweeps: int = 4, seed: Optional[int] = None
) -> int:
    """Lower bound on the (hop) diameter via repeated double sweeps.

    Start anywhere, BFS to the farthest vertex, BFS again from there;
    repeating from the new endpoint converges quickly in practice.
    """
    verts = list(graph.vertices())
    if not verts:
        return 0
    rng = random.Random(seed)
    start = rng.choice(verts)
    best = 0
    for _ in range(sweeps):
        hops = bfs_hops(graph, start)
        far, dist = max(hops.items(), key=lambda kv: kv[1])
        best = max(best, dist)
        start = far
    return best


def average_shortest_path_length(
    graph: LabeledGraph, samples: int = 50, seed: Optional[int] = None
) -> float:
    """Estimated mean hop distance over reachable pairs (sampled sources)."""
    verts = list(graph.vertices())
    if len(verts) < 2:
        return 0.0
    rng = random.Random(seed)
    total = 0.0
    count = 0
    for _ in range(min(samples, len(verts))):
        source = rng.choice(verts)
        hops = bfs_hops(graph, source)
        reachable = [h for v, h in hops.items() if v != source]
        if reachable:
            total += sum(reachable)
            count += len(reachable)
    return total / count if count else 0.0


def clustering_coefficient(
    graph: LabeledGraph, samples: int = 200, seed: Optional[int] = None
) -> float:
    """Estimated mean local clustering coefficient (sampled vertices)."""
    verts = [v for v in graph.vertices() if graph.degree(v) >= 2]
    if not verts:
        return 0.0
    rng = random.Random(seed)
    chosen = rng.sample(verts, min(samples, len(verts)))
    total = 0.0
    for v in chosen:
        nbrs = list(graph.neighbors(v))
        possible = len(nbrs) * (len(nbrs) - 1) / 2
        closed = sum(
            1
            for i, a in enumerate(nbrs)
            for b in nbrs[i + 1:]
            if graph.has_edge(a, b)
        )
        total += closed / possible
    return total / len(chosen)


def ball_coverage(
    graph: LabeledGraph,
    radius: float,
    samples: int = 20,
    seed: Optional[int] = None,
) -> float:
    """Mean fraction of the graph inside a radius-``radius`` ball.

    The locality number behind every PPKWS result: the paper's regime is
    ``ball_coverage(G, tau) << 1``.  (Weighted distance, not hops.)
    """
    verts = list(graph.vertices())
    if not verts:
        return 0.0
    rng = random.Random(seed)
    total = 0.0
    n = min(samples, len(verts))
    for _ in range(n):
        source = rng.choice(verts)
        ball = dijkstra(graph, source, cutoff=radius)
        total += len(ball) / len(verts)
    return total / n


def structural_summary(
    graph: LabeledGraph, tau: float = 5.0, seed: int = 7
) -> Dict[str, float]:
    """One-call structural profile (used by dataset reports)."""
    return {
        "num_vertices": float(graph.num_vertices),
        "num_edges": float(graph.num_edges),
        "avg_degree": (
            2.0 * graph.num_edges / graph.num_vertices if graph.num_vertices else 0.0
        ),
        "degree_skew": degree_skew(graph),
        "approx_diameter": float(approximate_diameter(graph, seed=seed)),
        "avg_path_length": average_shortest_path_length(graph, seed=seed),
        "clustering": clustering_coefficient(graph, seed=seed),
        "ball_coverage_tau": ball_coverage(graph, tau, seed=seed),
    }
