"""Read-only combined-graph *view*: ``G ⊕ G'`` without materialization.

The paper's baselines must evaluate on the combined graph; materializing
``Gc`` copies the entire public graph per user.  :class:`CombinedView`
instead presents the union lazily — adjacency, labels and the inverted
label index are computed on access by consulting both underlying graphs —
so any algorithm written against the read-only
:class:`~repro.graph.protocol.GraphLike` protocol (all of
:mod:`repro.semantics`, :mod:`repro.graph.traversal`) runs on the
combined view unchanged, with O(1) setup cost.  The two sides may use
different backends: in production the public side is a frozen
:class:`~repro.graph.frozen.FrozenGraph` and the private side a mutable
:class:`LabeledGraph`.

Semantics match :meth:`LabeledGraph.union`: vertex/edge union, label
union on shared vertices, minimum weight on shared edges.  The view is a
snapshot-by-reference: mutations of the underlying graphs show through
(callers who need isolation should materialize).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

from repro.exceptions import VertexNotFoundError
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.protocol import GraphLike

__all__ = ["CombinedView", "combine_lazy"]


class CombinedView:
    """A read-only union view over a public and a private graph.

    Implements the read surface of :class:`LabeledGraph` (everything the
    traversal and semantics modules touch); mutating methods are absent
    by design, so accidental writes fail loudly with ``AttributeError``.
    """

    __slots__ = ("public", "private", "name")

    def __init__(
        self, public: GraphLike, private: GraphLike, name: str = ""
    ) -> None:
        self.public = public
        self.private = private
        self.name = name or f"view:{public.name}+{private.name}"

    # ------------------------------------------------------------------
    # vertex set
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self.public or v in self.private

    def __iter__(self) -> Iterator[Vertex]:
        return self.vertices()

    def __len__(self) -> int:
        return self.num_vertices

    def vertices(self) -> Iterator[Vertex]:
        """All vertices of the union, each exactly once."""
        for v in self.public.vertices():
            yield v
        for v in self.private.vertices():
            if v not in self.public:
                yield v

    @property
    def num_vertices(self) -> int:
        """``|V ∪ V'|`` (portals counted once)."""
        shared = sum(1 for v in self.private.vertices() if v in self.public)
        return self.public.num_vertices + self.private.num_vertices - shared

    @property
    def num_edges(self) -> int:
        """``|E ∪ E'|`` (shared edges counted once)."""
        shared = sum(
            1
            for u, v, _ in self.private.edges()
            if self.public.has_edge(u, v)
        )
        return self.public.num_edges + self.private.num_edges - shared

    @property
    def size(self) -> int:
        """``|V| + |E|`` of the union."""
        return self.num_vertices + self.num_edges

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Union of the two neighbor sets."""
        return iter(dict(self.neighbor_items(v)))

    def neighbor_items(self, v: Vertex) -> Iterable[Tuple[Vertex, float]]:
        """``(neighbor, weight)`` pairs; shared edges take the min weight."""
        in_public = v in self.public
        in_private = v in self.private
        if not in_public and not in_private:
            raise VertexNotFoundError(v)
        if in_public and not in_private:
            return self.public.neighbor_items(v)
        if in_private and not in_public:
            return self.private.neighbor_items(v)
        merged: Dict[Vertex, float] = dict(self.public.neighbor_items(v))
        for u, w in self.private.neighbor_items(v):
            if w < merged.get(u, float("inf")):
                merged[u] = w
        return merged.items()

    def degree(self, v: Vertex) -> int:
        """Number of distinct neighbors in the union."""
        return sum(1 for _ in self.neighbors(v))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the edge exists in either graph."""
        return self.public.has_edge(u, v) or self.private.has_edge(u, v)

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Minimum of the two weights (consistent with ⊕)."""
        weights = []
        if self.public.has_edge(u, v):
            weights.append(self.public.weight(u, v))
        if self.private.has_edge(u, v):
            weights.append(self.private.weight(u, v))
        if not weights:
            from repro.exceptions import EdgeNotFoundError

            raise EdgeNotFoundError(u, v)
        return min(weights)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Each union edge once, with the effective (min) weight."""
        for u, v, w in self.public.edges():
            if self.private.has_edge(u, v):
                w = min(w, self.private.weight(u, v))
            yield u, v, w
        for u, v, w in self.private.edges():
            if not self.public.has_edge(u, v):
                yield u, v, w

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def labels(self, v: Vertex) -> FrozenSet[Label]:
        """Label union ``L(v) ∪ L'(v)``."""
        out: FrozenSet[Label] = frozenset()
        found = False
        if v in self.public:
            out |= self.public.labels(v)
            found = True
        if v in self.private:
            out |= self.private.labels(v)
            found = True
        if not found:
            raise VertexNotFoundError(v)
        return out

    def has_label(self, v: Vertex, label: Label) -> bool:
        """Whether ``label`` appears on ``v`` in either graph."""
        return label in self.labels(v)

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        """Union of the two inverted-index buckets."""
        return self.public.vertices_with_label(label) | (
            self.private.vertices_with_label(label)
        )

    def label_universe(self) -> FrozenSet[Label]:
        """Union of the label alphabets."""
        return self.public.label_universe() | self.private.label_universe()

    def label_frequency(self, label: Label) -> int:
        """Number of union vertices carrying ``label``."""
        return len(self.vertices_with_label(label))

    # ------------------------------------------------------------------
    def materialize(self) -> LabeledGraph:
        """An independent :class:`LabeledGraph` copy of the union."""
        return self.public.union(self.private, name=self.name)

    def stats(self) -> Mapping[str, float]:
        """Tab.-V-style statistics of the union (uniformly ``float``)."""
        return {
            "num_vertices": float(self.num_vertices),
            "num_edges": float(self.num_edges),
            "num_labels": float(len(self.label_universe())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CombinedView {self.name!r} |V|={self.num_vertices} "
            f"|E|={self.num_edges}>"
        )


def combine_lazy(
    public: GraphLike, private: GraphLike, name: str = ""
) -> CombinedView:
    """A zero-copy combined view of ``G ⊕ G'`` (read-only)."""
    return CombinedView(public, private, name)
