"""Synthetic graph generators.

The paper evaluates on YAGO3, DBpedia and PP-DBLP — multi-million-vertex
dumps we cannot ship.  These generators produce *structurally similar*
graphs at laptop scale (see DESIGN.md §4 for the substitution argument):

* random topologies (Erdős–Rényi, Barabási–Albert, Watts–Strogatz),
* a planted-community "collaboration network" used for the PP-DBLP
  stand-in, and
* Zipfian keyword assignment, reproducing the skewed label frequencies
  that drive keyword-search workloads (frequent labels -> large search
  origins, rare labels -> selective ones).

All generators take an explicit ``seed`` and are deterministic for a given
seed, which the benchmark harness relies on.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.exceptions import DatasetError
from repro.graph.labeled_graph import LabeledGraph

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "community_graph",
    "assign_zipf_labels",
    "zipf_weights",
]


def _empty_labeled(n: int, name: str) -> LabeledGraph:
    if n < 0:
        raise DatasetError(f"vertex count must be non-negative, got {n}")
    g = LabeledGraph(name)
    for v in range(n):
        g.add_vertex(v)
    return g


def erdos_renyi_graph(
    n: int, p: float, seed: Optional[int] = None, name: str = "er"
) -> LabeledGraph:
    """G(n, p) random graph over vertices ``0..n-1`` with unit weights.

    Uses the geometric skipping trick, so the cost is proportional to the
    number of edges generated rather than ``n**2``.
    """
    if not 0.0 <= p <= 1.0:
        raise DatasetError(f"edge probability must be in [0, 1], got {p}")
    rng = random.Random(seed)
    g = _empty_labeled(n, name)
    if p == 0.0 or n < 2:
        return g
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                g.add_edge(u, v)
        return g
    # Batagelj-Brandes geometric skipping over pairs (v, w), w < v.
    import math

    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w += 1 + int(math.log(max(1.0 - r, 1e-300)) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def barabasi_albert_graph(
    n: int, m: int, seed: Optional[int] = None, name: str = "ba"
) -> LabeledGraph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` others.

    Produces the heavy-tailed degree distribution typical of knowledge
    graphs and social networks (the YAGO3/DBpedia stand-ins use this).
    """
    if m < 1:
        raise DatasetError(f"attachment count m must be >= 1, got {m}")
    if n < m + 1:
        raise DatasetError(f"need n > m, got n={n}, m={m}")
    rng = random.Random(seed)
    g = _empty_labeled(n, name)
    # Start from a star on the first m+1 vertices so every early vertex
    # has nonzero degree.
    repeated: List[int] = []
    for v in range(1, m + 1):
        g.add_edge(0, v)
        repeated += [0, v]
    for v in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated))
        for t in targets:
            g.add_edge(v, t)
            repeated += [v, t]
    return g


def watts_strogatz_graph(
    n: int,
    k: int,
    beta: float,
    seed: Optional[int] = None,
    name: str = "ws",
) -> LabeledGraph:
    """Small-world ring lattice with rewiring probability ``beta``."""
    if k % 2 or k < 2:
        raise DatasetError(f"k must be a positive even integer, got {k}")
    if n <= k:
        raise DatasetError(f"need n > k, got n={n}, k={k}")
    if not 0.0 <= beta <= 1.0:
        raise DatasetError(f"beta must be in [0, 1], got {beta}")
    rng = random.Random(seed)
    g = _empty_labeled(n, name)
    half = k // 2
    for v in range(n):
        for j in range(1, half + 1):
            g.add_edge(v, (v + j) % n)
    if beta == 0.0:
        return g
    for v in range(n):
        for j in range(1, half + 1):
            u = (v + j) % n
            if rng.random() < beta and g.has_edge(v, u):
                candidates = [w for w in range(n) if w != v and not g.has_edge(v, w)]
                if candidates:
                    g.remove_edge(v, u)
                    g.add_edge(v, rng.choice(candidates))
    return g


def community_graph(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out_edges: int,
    seed: Optional[int] = None,
    name: str = "community",
) -> LabeledGraph:
    """Planted-partition collaboration network (the PP-DBLP stand-in).

    ``num_communities`` dense Erdős–Rényi blocks of ``community_size``
    vertices each (intra-block edge probability ``p_in``), joined by
    ``p_out_edges`` random inter-block edges — mimicking research
    communities bridged by occasional cross-community collaborations.
    """
    if num_communities < 1 or community_size < 1:
        raise DatasetError("need at least one community of at least one vertex")
    rng = random.Random(seed)
    n = num_communities * community_size
    g = _empty_labeled(n, name)
    for c in range(num_communities):
        base = c * community_size
        for i in range(community_size):
            for j in range(i + 1, community_size):
                if rng.random() < p_in:
                    g.add_edge(base + i, base + j)
    for _ in range(p_out_edges):
        c1, c2 = rng.sample(range(num_communities), 2) if num_communities > 1 else (0, 0)
        if c1 == c2:
            continue
        u = c1 * community_size + rng.randrange(community_size)
        v = c2 * community_size + rng.randrange(community_size)
        if u != v:
            g.add_edge(u, v)
    return g


def zipf_weights(num_labels: int, exponent: float = 1.0) -> List[float]:
    """Unnormalized Zipf weights ``1/rank**exponent`` for label sampling."""
    if num_labels < 1:
        raise DatasetError(f"need at least one label, got {num_labels}")
    return [1.0 / (rank**exponent) for rank in range(1, num_labels + 1)]


def assign_zipf_labels(
    graph: LabeledGraph,
    vocabulary: Sequence[str],
    labels_per_vertex: float,
    exponent: float = 1.0,
    seed: Optional[int] = None,
) -> None:
    """Assign Zipf-distributed labels in place.

    Each vertex receives a number of labels drawn so the *mean* equals
    ``labels_per_vertex`` (matching the paper's per-dataset averages in
    Tab. V: ~3.8 for YAGO3, ~3.7 for DBpedia, 10 for PP-DBLP), sampled
    without replacement per vertex from a Zipfian distribution over
    ``vocabulary``: a few hugely popular keywords, a long selective tail.
    """
    if labels_per_vertex <= 0:
        raise DatasetError(
            f"labels_per_vertex must be positive, got {labels_per_vertex}"
        )
    if labels_per_vertex > len(vocabulary):
        raise DatasetError("labels_per_vertex exceeds vocabulary size")
    rng = random.Random(seed)
    weights = zipf_weights(len(vocabulary), exponent)
    base = int(labels_per_vertex)
    frac = labels_per_vertex - base
    for v in graph.vertices():
        count = base + (1 if rng.random() < frac else 0)
        if count == 0:
            continue
        chosen: set = set()
        # Rejection-sample distinct labels; vocabulary >> count in all of
        # our datasets, so collisions are rare.
        while len(chosen) < count:
            chosen.update(
                rng.choices(vocabulary, weights=weights, k=count - len(chosen))
            )
        graph.add_labels(v, chosen)
