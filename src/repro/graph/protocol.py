"""The read-only graph protocol shared by every backend.

PPKWS runs its algorithms over three graph representations:

* :class:`~repro.graph.labeled_graph.LabeledGraph` — mutable dict-of-dicts,
  used for the small per-user private graphs and anywhere edits happen;
* :class:`~repro.graph.frozen.FrozenGraph` — immutable CSR arrays with
  interned integer ids, used for the large public graph;
* :class:`~repro.graph.views.CombinedView` — the lazy union ``G ⊕ G'``
  over one graph of each kind.

The traversal, sketch, portal and semantics layers only ever *read*
graphs, and :class:`GraphLike` is the exact surface they touch.  Any
object implementing it (vertex-keyed, labels as sets of strings) runs
through the whole pipeline unchanged; the concrete backends may expose
more (e.g. the CSR arrays that power the int-specialized fast paths),
but no algorithm may require more than this protocol.
"""

from __future__ import annotations

from typing import (
    FrozenSet,
    Iterable,
    Iterator,
    Protocol,
    Tuple,
)

from repro.graph.labeled_graph import Label, Vertex

__all__ = ["GraphLike"]


class GraphLike(Protocol):
    """Structural type of a readable labeled weighted graph.

    The core members (the ones every hot path uses) are
    ``neighbor_items``, ``labels``, ``has_label``, ``vertices_with_label``,
    ``__contains__``, ``__len__``, ``num_vertices``, ``num_edges`` and
    ``degree``; the remainder back specific consumers (baseline
    materialization, Tab.-V statistics, tree reconstruction).
    """

    # -- vertex set ----------------------------------------------------
    def __contains__(self, v: Vertex) -> bool: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[Vertex]: ...

    def vertices(self) -> Iterator[Vertex]: ...

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    # -- adjacency -----------------------------------------------------
    def neighbors(self, v: Vertex) -> Iterator[Vertex]: ...

    def neighbor_items(self, v: Vertex) -> Iterable[Tuple[Vertex, float]]: ...

    def degree(self, v: Vertex) -> int: ...

    def has_edge(self, u: Vertex, v: Vertex) -> bool: ...

    def weight(self, u: Vertex, v: Vertex) -> float: ...

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]: ...

    # -- labels --------------------------------------------------------
    def labels(self, v: Vertex) -> FrozenSet[Label]: ...

    def has_label(self, v: Vertex, label: Label) -> bool: ...

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]: ...

    def label_universe(self) -> FrozenSet[Label]: ...

    def label_frequency(self, label: Label) -> int: ...
