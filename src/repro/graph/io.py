"""Plain-text persistence for labeled graphs.

The format is a line-oriented mix of three record kinds, friendly to both
humans and ``grep``::

    # comment
    v <vertex> [label1 label2 ...]
    e <u> <v> [weight]

Vertices are stored as strings; :func:`load_graph` can map them back to
``int`` (the generators use integer vertices) via ``vertex_type=int``.
This mirrors the edge-list-plus-label-file shape of the public YAGO3 /
DBpedia / PP-DBLP dumps the paper used.
"""

from __future__ import annotations

import os
from typing import Callable, Union

from repro import faults
from repro.exceptions import GraphError
from repro.faults.points import (
    GRAPH_LOAD_READ,
    GRAPH_SAVE_FSYNC,
    GRAPH_SAVE_RENAME,
    GRAPH_SAVE_WRITE,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.ioutil import atomic_write

__all__ = ["save_graph", "load_graph", "mixed_vertex"]


def mixed_vertex(token: str) -> object:
    """Vertex conversion for graphs mixing int and str vertices.

    The dataset generators produce integer public vertices but string
    private-only vertices (``"user0:v3"``); this converter restores both
    faithfully: purely numeric tokens become ``int``, the rest stay
    ``str``.
    """
    try:
        return int(token)
    except ValueError:
        return token

PathLike = Union[str, "os.PathLike[str]"]


def save_graph(graph: LabeledGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` atomically in the text format above.

    Uses the same tmp + fsync + rename protocol as index persistence
    (:func:`repro.ioutil.atomic_write`): a crash mid-save leaves the
    previous file at ``path`` untouched rather than a torn hybrid.
    """
    with atomic_write(
        os.fspath(path),
        GRAPH_SAVE_WRITE,
        GRAPH_SAVE_FSYNC,
        GRAPH_SAVE_RENAME,
    ) as fh:
        fh.write(f"# repro graph {graph.name}\n")
        fh.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for v in graph.vertices():
            labels = " ".join(sorted(graph.labels(v)))
            fh.write(f"v {v} {labels}".rstrip() + "\n")
        for u, v, w in graph.edges():
            if w == 1.0:
                fh.write(f"e {u} {v}\n")
            else:
                fh.write(f"e {u} {v} {w}\n")


def load_graph(
    path: PathLike,
    vertex_type: Callable[[str], object] = str,
    name: str = "",
) -> LabeledGraph:
    """Read a graph previously written by :func:`save_graph`.

    Parameters
    ----------
    vertex_type:
        Conversion applied to each vertex token (``int`` for generator
        output, the default ``str`` otherwise).
    """
    g = LabeledGraph(name or os.fspath(path))
    faults.fire(GRAPH_LOAD_READ)
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            kind = parts[0]
            if kind == "v":
                if len(parts) < 2:
                    raise GraphError(f"{path}:{lineno}: vertex line needs an id")
                g.add_vertex(vertex_type(parts[1]), parts[2:])
            elif kind == "e":
                if len(parts) not in (3, 4):
                    raise GraphError(
                        f"{path}:{lineno}: edge line needs 2 endpoints "
                        "and an optional weight"
                    )
                weight = float(parts[3]) if len(parts) == 4 else 1.0
                g.add_edge(vertex_type(parts[1]), vertex_type(parts[2]), weight)
            else:
                raise GraphError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    return g
