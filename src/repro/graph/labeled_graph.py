"""A labeled, weighted, undirected graph (the mutable dict backend).

This is the data model of the paper (Sec. II): ``G = (V, E, L, Sigma)``
where each vertex carries a *set* of labels (keywords) and each edge has a
positive weight.

The repository splits graph storage by mutability.  ``LabeledGraph`` is
the *mutable* backend — dict-of-dicts adjacency keyed by arbitrary
hashables, O(1) edits and edge lookups, no third-party dependency — and
is used for the small per-user private graphs, for graph construction,
and everywhere updates happen (:mod:`repro.core.dynamic`).  The large
public graph, which the framework treats as immutable once indexed, is
interned into the compact CSR backend
:class:`~repro.graph.frozen.FrozenGraph` instead; both satisfy the
read-only :class:`~repro.graph.protocol.GraphLike` protocol that the
traversal and search layers are written against.

Besides plain adjacency the graph maintains an inverted *label index*
(keyword -> set of vertices), which every keyword-search semantic uses to
locate search origins in O(1).
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError

Vertex = Hashable
Label = str
Edge = Tuple[Vertex, Vertex]

__all__ = ["LabeledGraph", "Vertex", "Label", "Edge"]


class LabeledGraph:
    """Labeled, weighted, undirected graph.

    Vertices may be any hashable object; labels are strings.  Edge weights
    must be positive (shortest-path algorithms rely on this).  Self-loops
    are rejected: they never participate in shortest paths and the paper's
    model does not use them.

    Example
    -------
    >>> g = LabeledGraph()
    >>> g.add_vertex("bob", labels={"DB"})
    >>> g.add_vertex("alice", labels={"AI"})
    >>> g.add_edge("bob", "alice", weight=2.0)
    >>> g.degree("bob")
    1
    >>> sorted(g.vertices_with_label("AI"))
    ['alice']
    """

    __slots__ = ("_adj", "_labels", "_label_index", "_num_edges", "name")

    def __init__(self, name: str = "") -> None:
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}
        self._labels: Dict[Vertex, FrozenSet[Label]] = {}
        self._label_index: Dict[Label, Set[Vertex]] = {}
        self._num_edges: int = 0
        self.name = name

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex, labels: Optional[Iterable[Label]] = None) -> None:
        """Add vertex ``v``; merge ``labels`` into its label set if it exists."""
        if v not in self._adj:
            self._adj[v] = {}
            self._labels[v] = frozenset()
        if labels:
            self._set_labels(v, self._labels[v] | frozenset(labels))

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed.

        Re-adding an existing edge overwrites its weight.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        if weight <= 0:
            raise GraphError(f"edge weight must be positive, got {weight}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``(u, v)``; raise if it is absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v``, all its incident edges and its label-index entries."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        for nbr in list(self._adj[v]):
            self.remove_edge(v, nbr)
        self._set_labels(v, frozenset())
        del self._labels[v]
        del self._adj[v]

    def add_labels(self, v: Vertex, labels: Iterable[Label]) -> None:
        """Attach additional labels to an existing vertex."""
        if v not in self._adj:
            raise VertexNotFoundError(v)
        self._set_labels(v, self._labels[v] | frozenset(labels))

    def _set_labels(self, v: Vertex, new: FrozenSet[Label]) -> None:
        old = self._labels.get(v, frozenset())
        for dropped in old - new:
            bucket = self._label_index[dropped]
            bucket.discard(v)
            if not bucket:
                del self._label_index[dropped]
        for added in new - old:
            self._label_index.setdefault(added, set()).add(v)
        self._labels[v] = new

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` as defined in the paper (Sec. II)."""
        return self.num_vertices + self.num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over each undirected edge once as ``(u, v, weight)``."""
        seen: Set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbors of ``v``."""
        try:
            return iter(self._adj[v])
        except KeyError:
            raise VertexNotFoundError(v) from None

    def neighbor_items(self, v: Vertex) -> Iterable[Tuple[Vertex, float]]:
        """Iterate ``(neighbor, weight)`` pairs of ``v`` (hot path helper)."""
        try:
            return self._adj[v].items()
        except KeyError:
            raise VertexNotFoundError(v) from None

    def degree(self, v: Vertex) -> int:
        """Number of neighbors of ``v``."""
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFoundError(v) from None

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Vertex, v: Vertex) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFoundError`."""
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def labels(self, v: Vertex) -> FrozenSet[Label]:
        """Label set ``L(v)``."""
        try:
            return self._labels[v]
        except KeyError:
            raise VertexNotFoundError(v) from None

    def has_label(self, v: Vertex, label: Label) -> bool:
        """Whether ``label in L(v)``."""
        return label in self.labels(v)

    def vertices_with_label(self, label: Label) -> FrozenSet[Vertex]:
        """All vertices carrying ``label`` (the inverted index lookup)."""
        return frozenset(self._label_index.get(label, ()))

    def label_universe(self) -> FrozenSet[Label]:
        """The label alphabet ``Sigma`` actually used by some vertex."""
        return frozenset(self._label_index)

    def label_frequency(self, label: Label) -> int:
        """Number of vertices carrying ``label``."""
        return len(self._label_index.get(label, ()))

    def average_labels_per_vertex(self) -> float:
        """Mean ``|L(v)|`` — the paper reports this per dataset (Tab. V)."""
        if not self._labels:
            return 0.0
        return sum(len(ls) for ls in self._labels.values()) / len(self._labels)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "LabeledGraph":
        """Deep-copy the graph structure (labels are shared frozensets)."""
        out = LabeledGraph(name if name is not None else self.name)
        for v, ls in self._labels.items():
            out.add_vertex(v, ls)
        for u, v, w in self.edges():
            out.add_edge(u, v, w)
        return out

    def subgraph(self, keep: Iterable[Vertex], name: str = "") -> "LabeledGraph":
        """Vertex-induced subgraph on ``keep`` (unknown vertices ignored)."""
        keep_set = {v for v in keep if v in self._adj}
        out = LabeledGraph(name)
        for v in keep_set:
            out.add_vertex(v, self._labels[v])
        for v in keep_set:
            for u, w in self._adj[v].items():
                if u in keep_set and not out.has_edge(v, u):
                    out.add_edge(v, u, w)
        return out

    def union(self, other: "LabeledGraph", name: str = "") -> "LabeledGraph":
        """Graph union: ``Vc = V ∪ V'``, ``Ec = E ∪ E'`` (paper's ⊕).

        Shared vertices merge their label sets; a shared edge keeps the
        *minimum* of the two weights.  The minimum (rather than either
        side overwriting) preserves the invariant the whole framework
        rests on: both inputs are subgraphs of the union, so distances in
        the union never exceed distances in either input.
        """
        out = self.copy(name)
        for v in other.vertices():
            out.add_vertex(v, other.labels(v))
        for u, v, w in other.edges():
            if out.has_edge(u, v):
                out.add_edge(u, v, min(w, out.weight(u, v)))
            else:
                out.add_edge(u, v, w)
        return out

    def connected_components(self) -> Iterator[Set[Vertex]]:
        """Yield vertex sets of connected components (iterative BFS)."""
        seen: Set[Vertex] = set()
        for start in self._adj:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                nxt = []
                for v in frontier:
                    for u in self._adj[v]:
                        if u not in component:
                            component.add(u)
                            nxt.append(u)
                frontier = nxt
            seen |= component
            yield component

    def is_connected(self) -> bool:
        """Whether the graph has at most one connected component."""
        components = self.connected_components()
        first = next(components, None)
        if first is None:
            return True
        return next(components, None) is None

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{tag} |V|={self.num_vertices} |E|={self.num_edges} "
            f"|Sigma|={len(self._label_index)}>"
        )

    def stats(self) -> Mapping[str, float]:
        """Summary statistics in the shape of the paper's Tab. V.

        All values are ``float`` (as declared), so the mapping has one
        uniform value type across backends —
        :meth:`FrozenGraph.stats <repro.graph.frozen.FrozenGraph.stats>`
        returns the identical shape.
        """
        return {
            "num_vertices": float(self.num_vertices),
            "num_edges": float(self.num_edges),
            "num_labels": float(len(self._label_index)),
            "avg_labels_per_vertex": self.average_labels_per_vertex(),
            "avg_degree": (2.0 * self.num_edges / self.num_vertices) if self._adj else 0.0,
        }

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        labels: Optional[Mapping[Vertex, Iterable[Label]]] = None,
        name: str = "",
    ) -> "LabeledGraph":
        """Build a unit-weight graph from an edge list and a label mapping."""
        g = cls(name)
        for u, v in edges:
            g.add_edge(u, v)
        for v, ls in (labels or {}).items():
            g.add_vertex(v, ls)
        return g

    def relabel_disjoint(self, other: "LabeledGraph") -> bool:
        """Whether this graph and ``other`` share no vertices."""
        small, large = (
            (self, other) if self.num_vertices <= other.num_vertices else (other, self)
        )
        return not any(v in large for v in small.vertices())


def path_weight(graph: LabeledGraph, path: Iterable[Vertex]) -> float:
    """Total weight of ``path`` (a vertex sequence) in ``graph``.

    Raises :class:`EdgeNotFoundError` if consecutive vertices are not
    adjacent, so this doubles as a path-validity check in tests.
    """
    total = 0.0
    a, b = itertools.tee(path)
    next(b, None)
    for u, v in zip(a, b):
        total += graph.weight(u, v)
    return total
