"""The public-private graph model (paper Sec. II).

A :class:`PublicPrivateNetwork` holds one shared public graph ``G`` and a
collection of per-owner private graphs ``G'``.  A private graph attaches
to the public graph through its *portal nodes* — vertices present in both
(Def. II.1) — and each owner sees the *combined graph* ``Gc = G ⊕ G'``
with ``Vc = V ∪ V'`` and ``Ec = E ∪ E'``.

The combined graph is what the baselines (query model M2) search directly;
PPKWS (M3) instead keeps the pieces separate and stitches distances
through the portals.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.protocol import GraphLike

__all__ = ["PublicPrivateNetwork", "portal_nodes", "combine"]


def portal_nodes(public: GraphLike, private: GraphLike) -> FrozenSet[Vertex]:
    """Portal nodes ``P = V ∩ V'`` (Def. II.1).

    Works across mixed backends: in production ``public`` is a frozen
    CSR graph and ``private`` a mutable dict graph; only iteration of
    the smaller side and membership tests on the larger are needed.
    """
    small, large = (
        (private, public)
        if private.num_vertices <= public.num_vertices
        else (public, private)
    )
    return frozenset(v for v in small.vertices() if v in large)


def combine(
    public: GraphLike, private: GraphLike, name: str = ""
) -> LabeledGraph:
    """The combined graph ``Gc = G ⊕ G'`` (the paper's attach operation)."""
    return public.union(private, name or f"{public.name}+{private.name}")


class PublicPrivateNetwork:
    """A public graph plus named private graphs, one per owner.

    Example
    -------
    >>> pub = LabeledGraph.from_edges([(1, 2), (2, 3)], {1: {"DB"}, 3: {"AI"}})
    >>> priv = LabeledGraph.from_edges([(3, 10)], {10: {"CV"}})
    >>> net = PublicPrivateNetwork(pub)
    >>> net.add_private_graph("bob", priv)
    >>> sorted(net.portals("bob"))
    [3]
    >>> net.combined("bob").num_vertices
    4
    """

    def __init__(self, public: GraphLike) -> None:
        self._public = public
        self._private: Dict[str, LabeledGraph] = {}
        self._portals: Dict[str, FrozenSet[Vertex]] = {}

    # ------------------------------------------------------------------
    @property
    def public(self) -> GraphLike:
        """The shared public graph ``G``."""
        return self._public

    def add_private_graph(
        self,
        owner: str,
        private: LabeledGraph,
        require_portals: bool = True,
    ) -> FrozenSet[Vertex]:
        """Register ``private`` for ``owner`` and return its portal set.

        ``require_portals=True`` (the default) rejects a private graph
        with no common vertex — such a graph can never contribute to a
        public-private answer and attaching it is almost always a caller
        bug.  Pass ``False`` to allow fully detached private graphs.
        """
        if owner in self._private:
            raise GraphError(f"owner {owner!r} already has a private graph")
        portals = portal_nodes(self._public, private)
        if require_portals and not portals:
            raise GraphError(
                f"private graph of {owner!r} shares no vertex with the "
                "public graph (no portal nodes)"
            )
        self._private[owner] = private
        self._portals[owner] = portals
        return portals

    def remove_private_graph(self, owner: str) -> None:
        """Forget ``owner``'s private graph."""
        if owner not in self._private:
            raise GraphError(f"owner {owner!r} has no private graph")
        del self._private[owner]
        del self._portals[owner]

    def private(self, owner: str) -> LabeledGraph:
        """The private graph ``G'`` of ``owner``."""
        try:
            return self._private[owner]
        except KeyError:
            raise GraphError(f"owner {owner!r} has no private graph") from None

    def portals(self, owner: str) -> FrozenSet[Vertex]:
        """The portal nodes of ``owner``'s private graph."""
        try:
            return self._portals[owner]
        except KeyError:
            raise GraphError(f"owner {owner!r} has no private graph") from None

    def combined(self, owner: str) -> LabeledGraph:
        """Materialize ``Gc = G ⊕ G'`` for ``owner`` (used by baselines)."""
        return combine(self._public, self.private(owner), name=f"combined:{owner}")

    def owners(self) -> Iterator[str]:
        """Iterate over registered owners."""
        return iter(self._private)

    def __contains__(self, owner: str) -> bool:
        return owner in self._private

    def __len__(self) -> int:
        return len(self._private)

    # ------------------------------------------------------------------
    def is_private_vertex(self, owner: str, v: Vertex) -> bool:
        """Whether ``v`` lives in the private graph of ``owner``."""
        return v in self.private(owner)

    def is_public_vertex(self, v: Vertex) -> bool:
        """Whether ``v`` lives in the public graph."""
        return v in self._public

    def classify_answer_vertices(
        self, owner: str, vertices: Iterable[Vertex]
    ) -> Tuple[bool, bool]:
        """Return ``(touches_private, touches_public_only)`` for an answer.

        A *public-private answer* (Def. II.2) must contain at least one
        keyword vertex from the private graph and one from the public
        graph; this helper feeds that qualification test.  Portal nodes
        live in both graphs; a portal counts as private here, while
        "public only" requires a vertex outside ``V'``.
        """
        private_graph = self.private(owner)
        touches_private = False
        touches_public_only = False
        for v in vertices:
            if v in private_graph:
                touches_private = True
            elif v in self._public:
                touches_public_only = True
        return touches_private, touches_public_only

    def stats(self, owner: Optional[str] = None) -> Dict[str, float]:
        """Tab.-V-style statistics for the network (or one owner's view)."""
        out = dict(self._public.stats())
        if owner is not None:
            priv = self.private(owner)
            out.update(
                private_vertices=priv.num_vertices,
                private_edges=priv.num_edges,
                portals=len(self.portals(owner)),
            )
        else:
            out.update(num_owners=len(self._private))
        return out
