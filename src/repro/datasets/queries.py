"""Query workload generators (paper Sec. VII-A.4).

The paper runs 50 random keyword queries per experiment, generated so
that *public-private answers exist*:

* Blinks / r-clique queries mix keywords present in the private graph's
  alphabet with keywords present in the public one
  (``Q ∩ G'.Σ ≠ ∅`` and ``Q ∩ G.Σ ≠ ∅``);
* k-nk queries pick the query vertex from the private graph and the
  keyword following the keyword distribution of the combined graph.

These generators reproduce that workload over our synthetic datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.graph.labeled_graph import Label, LabeledGraph, Vertex

__all__ = [
    "KeywordQuery",
    "KnkQuery",
    "generate_keyword_queries",
    "generate_knk_queries",
    "zipfian_tenant_workload",
    "zipfian_weights",
]


@dataclass(frozen=True)
class KeywordQuery:
    """A Blinks / r-clique workload item: keywords plus the bound tau."""

    keywords: Tuple[Label, ...]
    tau: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"Q={{{', '.join(self.keywords)}}} tau={self.tau:g}"


@dataclass(frozen=True)
class KnkQuery:
    """A k-nk workload item: ``(source, keyword, k)``."""

    source: Vertex
    keyword: Label
    k: int


def zipfian_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Unnormalized Zipf weights ``1 / rank^exponent`` for ranks 1..n.

    ``exponent=0`` degenerates to a uniform distribution; larger
    exponents concentrate mass on the first ranks.
    """
    if n < 0:
        raise QueryError(f"need a non-negative rank count, got {n}")
    if exponent < 0:
        raise QueryError(f"Zipf exponent must be >= 0, got {exponent}")
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def zipfian_tenant_workload(
    tenants: Sequence[str],
    num_requests: int,
    exponent: float = 1.0,
    seed: Optional[int] = None,
) -> List[str]:
    """Assign each of ``num_requests`` requests to a tenant, Zipf-style.

    Multi-tenant serving traffic is famously skewed: a few hot tenants
    take most of the requests while a long tail stays nearly idle.  This
    draws a request-to-tenant sequence with popularity ``1 / rank^s``
    where rank follows the order of ``tenants`` (first = most popular) —
    the standard Zipfian tenant-popularity model serving benchmarks use,
    and the regime a cross-request answer cache actually faces (hot
    tenants re-ask the same queries; cold tenants barely warm theirs).
    """
    if not tenants:
        raise QueryError("need at least one tenant to spread requests over")
    if num_requests < 0:
        raise QueryError(f"need a non-negative request count, got {num_requests}")
    rng = random.Random(seed)
    weights = zipfian_weights(len(tenants), exponent)
    return rng.choices(list(tenants), weights=weights, k=num_requests)


def _weighted_label_choice(
    rng: random.Random, graph: LabeledGraph, labels: Sequence[Label]
) -> Label:
    """Pick a label weighted by its frequency in ``graph``."""
    weights = [max(1, graph.label_frequency(t)) for t in labels]
    return rng.choices(list(labels), weights=weights, k=1)[0]


def generate_keyword_queries(
    public: LabeledGraph,
    private: LabeledGraph,
    num_queries: int = 50,
    keywords_per_query: int = 3,
    tau: float = 5.0,
    seed: Optional[int] = None,
) -> List[KeywordQuery]:
    """Random keyword queries guaranteed to straddle both alphabets.

    Each query draws at least one keyword from the private alphabet and
    at least one from the public alphabet (frequency-weighted, like
    picking from ``G.Σ`` at random); remaining slots draw from the union.
    """
    if keywords_per_query < 2:
        raise QueryError("need at least 2 keywords to straddle both graphs")
    private_labels = sorted(private.label_universe())
    public_labels = sorted(public.label_universe())
    if not private_labels or not public_labels:
        raise QueryError("both graphs must carry at least one label")
    union_labels = sorted(set(private_labels) | set(public_labels))
    rng = random.Random(seed)
    queries: List[KeywordQuery] = []
    for _ in range(num_queries):
        chosen: List[Label] = [_weighted_label_choice(rng, private, private_labels)]
        # Draw a public-side keyword distinct from the private one (the
        # alphabets overlap, so a joint draw could repeat it).
        while True:
            pub_kw = _weighted_label_choice(rng, public, public_labels)
            if pub_kw not in chosen or len(public_labels) == 1:
                chosen.append(pub_kw)
                break
        while len(chosen) < keywords_per_query:
            extra = rng.choice(union_labels)
            if extra not in chosen:
                chosen.append(extra)
        rng.shuffle(chosen)
        queries.append(KeywordQuery(tuple(chosen), tau))
    return queries


def generate_knk_queries(
    public: LabeledGraph,
    private: LabeledGraph,
    num_queries: int = 50,
    k: int = 64,
    seed: Optional[int] = None,
) -> List[KnkQuery]:
    """Random k-nk queries: private source vertex, combined-graph keyword.

    Following the paper, ``k`` is chosen to exceed the keyword's private
    frequency so the top-k must spill into the public graph (they use
    k = 64 > max private keyword frequency).
    """
    rng = random.Random(seed)
    private_vertices = sorted(private.vertices(), key=repr)
    if not private_vertices:
        raise QueryError("private graph has no vertices")
    # Keyword distribution of the combined graph = union, weighted by
    # total frequency.
    labels = sorted(set(public.label_universe()) | set(private.label_universe()))
    if not labels:
        raise QueryError("no labels to query")
    weights = [
        public.label_frequency(t) + private.label_frequency(t) for t in labels
    ]
    queries: List[KnkQuery] = []
    for _ in range(num_queries):
        source = rng.choice(private_vertices)
        keyword = rng.choices(labels, weights=weights, k=1)[0]
        queries.append(KnkQuery(source, keyword, k))
    return queries
