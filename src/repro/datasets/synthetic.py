"""Synthetic stand-ins for the paper's datasets (Tab. V).

The paper evaluates on YAGO3 (2.6M vertices), DBpedia (5.8M) and PP-DBLP
(2.2M); we cannot ship those dumps, so each dataset family reproduces the
*structural* characteristics that matter to the algorithms, scaled to a
configurable size (DESIGN.md §4 documents the substitution argument):

* ``yago_like``    — sparse knowledge graph, avg degree ~4, ~3.8
  labels/vertex, private graphs are domain-induced subregions
  (a connected neighborhood of the public graph re-rooted privately).
* ``dbpedia_like`` — denser graph, avg degree ~6, ~3.7 labels/vertex,
  same private-graph style.
* ``ppdblp_like``  — community-structured collaboration network with
  ~10 labels/vertex; private graphs are small "ongoing collaboration"
  graphs around a few authors (many small components allowed).

Topology note: the paper's graphs have millions of vertices, so a
``tau``-ball around a portal is a vanishing fraction of the graph.  At
laptop scale a scale-free topology would let a radius-4 ball swallow the
whole graph — a finite-size artifact that would invert every locality-
driven result.  The knowledge-graph stand-ins therefore use high-diameter
small-world topologies (Watts-Strogatz rings with low rewiring), which
preserve the paper's *ball-to-graph ratio* at 10^4 vertices while keeping
the reported average degrees and label statistics.  A thin *hub overlay*
(a fraction of a percent of vertices receive extra random edges) restores
the degree/PageRank skew real knowledge graphs have — the property PADS
exploits (Tab. VI) — without collapsing the diameter.

Each builder returns a :class:`PublicPrivateDataset` holding the public
graph, one or more private graphs and the vocabulary, ready to feed into
the PPKWS engine and the benchmark harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import DatasetError
from repro.graph.generators import (
    assign_zipf_labels,
    community_graph,
    watts_strogatz_graph,
)
from repro.graph.labeled_graph import LabeledGraph, Vertex
from repro.graph.traversal import bfs_hops

__all__ = [
    "PublicPrivateDataset",
    "yago_like",
    "dbpedia_like",
    "ppdblp_like",
    "dataset_by_name",
    "DATASET_BUILDERS",
]


@dataclass
class PublicPrivateDataset:
    """A public graph plus generated private graphs and metadata."""

    name: str
    public: LabeledGraph
    private_graphs: Dict[str, LabeledGraph] = field(default_factory=dict)
    vocabulary: List[str] = field(default_factory=list)
    seed: Optional[int] = None

    def private(self, owner: str = "user0") -> LabeledGraph:
        """A private graph by owner name (default: the first one)."""
        try:
            return self.private_graphs[owner]
        except KeyError:
            raise DatasetError(
                f"dataset {self.name!r} has no private graph {owner!r}"
            ) from None

    def owners(self) -> List[str]:
        """All generated private-graph owners."""
        return list(self.private_graphs)


def _vocabulary(num_labels: int) -> List[str]:
    """Label alphabet ``t0 .. t<n-1>`` (rank order = Zipf popularity)."""
    return [f"t{i}" for i in range(num_labels)]


def _add_hub_overlay(
    graph: LabeledGraph,
    rng: random.Random,
    hub_fraction: float,
    hub_degree: int,
) -> None:
    """Promote a small vertex fraction to hubs with extra random edges.

    Restores the heavy-ish degree tail (and hence PageRank skew) of real
    knowledge graphs on top of a high-diameter backbone.
    """
    vertices = list(graph.vertices())
    num_hubs = max(1, int(len(vertices) * hub_fraction))
    hubs = rng.sample(vertices, num_hubs)
    for hub in hubs:
        for _ in range(hub_degree):
            target = rng.choice(vertices)
            if target != hub and not graph.has_edge(hub, target):
                graph.add_edge(hub, target)


def _carve_private_graph(
    public: LabeledGraph,
    rng: random.Random,
    target_vertices: int,
    portal_fraction: float,
    owner_offset: str,
    extra_label_pool: Sequence[str],
    labels_per_vertex: float,
) -> LabeledGraph:
    """Build a private graph overlapping a public neighborhood.

    Mirrors how the paper derives private graphs from domain subregions
    of YAGO3/DBpedia: pick a public seed vertex, take a BFS ball, keep a
    ``portal_fraction`` of it as shared (portal) vertices, and add fresh
    private-only vertices/edges around them.
    """
    seeds = list(public.vertices())
    if not seeds:
        raise DatasetError("public graph is empty")
    ball: List[Vertex] = []
    attempts = 0
    want_portals = max(1, int(target_vertices * portal_fraction))
    while len(ball) < want_portals and attempts < 20:
        seed_vertex = rng.choice(seeds)
        hops = bfs_hops(public, seed_vertex, max_hops=3)
        ball = list(hops)
        attempts += 1
    rng.shuffle(ball)
    portals = ball[:want_portals]
    if not portals:
        raise DatasetError("could not find portal candidates in the public graph")

    private = LabeledGraph(f"private:{owner_offset}")
    for p in portals:
        # Portals keep their identity; their private-side labels are a
        # fresh draw (the private view of an entity is not the public one).
        private.add_vertex(p)

    num_private_only = max(0, target_vertices - len(portals))
    private_only = [f"{owner_offset}:v{i}" for i in range(num_private_only)]
    for v in private_only:
        private.add_vertex(v)

    # Wire the private graph: a sparse random tree-plus-chords pattern so
    # it is mostly connected with avg degree ~2-3, like small private
    # collaboration/knowledge graphs.
    all_private = portals + private_only
    for i, v in enumerate(all_private[1:], start=1):
        u = all_private[rng.randrange(i)]
        if u != v and not private.has_edge(u, v):
            private.add_edge(u, v)
    extra_edges = len(all_private) // 2
    for _ in range(extra_edges):
        u, v = rng.sample(all_private, 2)
        if not private.has_edge(u, v):
            private.add_edge(u, v)

    assign_zipf_labels(
        private,
        list(extra_label_pool),
        labels_per_vertex,
        seed=rng.randrange(2**31),
    )
    return private


def yago_like(
    num_vertices: int = 3000,
    num_labels: int = 200,
    num_private: int = 1,
    private_vertices: int = 120,
    seed: int = 7,
) -> PublicPrivateDataset:
    """YAGO3 stand-in: sparse high-diameter knowledge graph (avg degree 4)."""
    rng = random.Random(seed)
    vocab = _vocabulary(num_labels)
    public = watts_strogatz_graph(num_vertices, 4, 0.02,
                                  seed=rng.randrange(2**31), name="yago-like")
    _add_hub_overlay(public, rng, hub_fraction=0.004, hub_degree=10)
    assign_zipf_labels(public, vocab, 3.8, seed=rng.randrange(2**31))
    ds = PublicPrivateDataset("yago", public, {}, vocab, seed)
    for i in range(num_private):
        owner = f"user{i}"
        ds.private_graphs[owner] = _carve_private_graph(
            public, rng, private_vertices, portal_fraction=0.15,
            owner_offset=owner, extra_label_pool=vocab, labels_per_vertex=3.8,
        )
    return ds


def dbpedia_like(
    num_vertices: int = 3000,
    num_labels: int = 200,
    num_private: int = 1,
    private_vertices: int = 150,
    seed: int = 11,
) -> PublicPrivateDataset:
    """DBpedia stand-in: denser high-diameter graph (avg degree 6)."""
    rng = random.Random(seed)
    vocab = _vocabulary(num_labels)
    public = watts_strogatz_graph(num_vertices, 6, 0.03,
                                  seed=rng.randrange(2**31), name="dbpedia-like")
    _add_hub_overlay(public, rng, hub_fraction=0.004, hub_degree=12)
    assign_zipf_labels(public, vocab, 3.7, seed=rng.randrange(2**31))
    ds = PublicPrivateDataset("dbpedia", public, {}, vocab, seed)
    for i in range(num_private):
        owner = f"user{i}"
        ds.private_graphs[owner] = _carve_private_graph(
            public, rng, private_vertices, portal_fraction=0.12,
            owner_offset=owner, extra_label_pool=vocab, labels_per_vertex=3.7,
        )
    return ds


def ppdblp_like(
    num_communities: int = 60,
    community_size: int = 40,
    num_labels: int = 300,
    num_private: int = 1,
    private_vertices: int = 80,
    seed: int = 13,
) -> PublicPrivateDataset:
    """PP-DBLP stand-in: community-structured collaboration network.

    Public graph: planted communities bridged by random collaborations;
    ~10 labels/vertex (research topics).  Private graphs: small ongoing-
    collaboration graphs whose portals are existing authors.
    """
    rng = random.Random(seed)
    vocab = _vocabulary(num_labels)
    public = community_graph(
        num_communities, community_size, p_in=0.12,
        p_out_edges=num_communities * 6, seed=rng.randrange(2**31),
        name="ppdblp-like",
    )
    assign_zipf_labels(public, vocab, 10.0, seed=rng.randrange(2**31))
    ds = PublicPrivateDataset("ppdblp", public, {}, vocab, seed)
    for i in range(num_private):
        owner = f"user{i}"
        ds.private_graphs[owner] = _carve_private_graph(
            public, rng, private_vertices, portal_fraction=0.2,
            owner_offset=owner, extra_label_pool=vocab, labels_per_vertex=10.0,
        )
    return ds


DATASET_BUILDERS = {
    "yago": yago_like,
    "dbpedia": dbpedia_like,
    "ppdblp": ppdblp_like,
}


def dataset_by_name(name: str, **kwargs: object) -> PublicPrivateDataset:
    """Build one of the three dataset families by name."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(**kwargs)  # type: ignore[arg-type]
