"""Synthetic datasets and query workloads mirroring the paper's setup."""

from repro.datasets.queries import (
    KeywordQuery,
    KnkQuery,
    generate_keyword_queries,
    generate_knk_queries,
    zipfian_tenant_workload,
    zipfian_weights,
)
from repro.datasets.synthetic import (
    DATASET_BUILDERS,
    PublicPrivateDataset,
    dataset_by_name,
    dbpedia_like,
    ppdblp_like,
    yago_like,
)

__all__ = [
    "DATASET_BUILDERS",
    "KeywordQuery",
    "KnkQuery",
    "PublicPrivateDataset",
    "dataset_by_name",
    "dbpedia_like",
    "generate_keyword_queries",
    "generate_knk_queries",
    "ppdblp_like",
    "yago_like",
    "zipfian_tenant_workload",
    "zipfian_weights",
]
