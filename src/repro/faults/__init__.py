"""Deterministic fault injection for the PPKWS serving stack.

The ROADMAP's north star is serving heavy traffic, and a serving stack
is only as good as its behaviour under partial failure: crashed
workers, torn writes, slow disks, flaky locks.  This package makes
those failures *first-class and reproducible*: named injection points
(:mod:`repro.faults.points`) are wired into the I/O layer
(``core/persist``, ``graph/io``), the serving layer (executor workers,
answer cache, rwlocks) and the service facade, and a seeded
:class:`FaultSchedule` decides — deterministically — which hits of
which points misbehave and how.

Zero overhead when disabled
---------------------------
No schedule is active unless one is installed, and every production
hook reduces to a module-level ``is_active()`` check (one global read
plus a ``None`` comparison) per *operation* — never per inner-loop
iteration.  ``benchmarks/test_faults_overhead.py`` holds that contract
the same way ``test_obs_overhead.py`` does for observability.

Actions
-------
``raise``
    Raise :class:`~repro.exceptions.FaultInjectedError` at the point.
``kill``
    Raise :class:`~repro.exceptions.WorkerKilledError` — the executor
    lets it escape the worker loop, simulating a dead worker thread.
``delay``
    Sleep ``delay_s`` seconds (slow disk / lock convoy simulation).
``truncate``
    At a write-stream point (see :func:`wrap_write`): write only the
    first ``truncate_at`` bytes, then raise
    :class:`~repro.exceptions.TornWriteError` — a byte-accurate torn
    write.  At a non-stream point it degrades to a raise.

Activation
----------
Either lexically::

    schedule = FaultSchedule([FaultSpec(points.EXECUTOR_WORKER, "kill")])
    with faults.injected(schedule):
        ...  # chaos here

or process-wide via the environment (picked up at import time), e.g.::

    PPKWS_FAULTS="persist.save.write:truncate@1:137;serving.executor.worker:kill@3"
    PPKWS_FAULTS="seed:42"          # a seeded pseudo-random schedule

Each ``;``-separated entry is ``point:kind[@hit[+]][:arg]`` — fire
``kind`` on the ``hit``-th hit of ``point`` (``+`` = every hit from
there on), with ``arg`` the byte offset for ``truncate`` or the seconds
for ``delay``.

Every actual injection is counted (per schedule, and as
``ppkws_faults_injected_total{point}`` when a metrics registry is
installed) so a chaos run can assert its faults really fired.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import (
    FaultInjectedError,
    TornWriteError,
    WorkerKilledError,
)
from repro.faults.points import (
    FaultPoint,
    all_points,
    point_named,
)
from repro.obs.registry import installed

__all__ = [
    "ACTION_KINDS",
    "FaultPoint",
    "FaultSchedule",
    "FaultSpec",
    "activate",
    "active",
    "all_points",
    "deactivate",
    "fire",
    "injected",
    "is_active",
    "point_named",
    "schedule_from_env",
    "seeded_schedule",
    "wrap_write",
]

#: The closed set of injection actions.
ACTION_KINDS: Tuple[str, ...] = ("raise", "kill", "delay", "truncate")

#: Environment variable holding a schedule spec (see module docstring).
ENV_VAR = "PPKWS_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: *what* happens at *which* hit of *which* point.

    ``at_hit`` is 1-based; with ``every=False`` (default) the spec fires
    on exactly that hit, with ``every=True`` on that hit and every later
    one.  ``delay_s`` / ``truncate_at`` parameterize the ``delay`` /
    ``truncate`` kinds and are ignored by the others.
    """

    point: FaultPoint
    kind: str
    at_hit: int = 1
    every: bool = False
    delay_s: float = 0.0
    truncate_at: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.point, FaultPoint):
            raise ValueError(
                f"FaultSpec.point must be a FaultPoint constant from "
                f"repro.faults.points, got {self.point!r}"
            )
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {ACTION_KINDS})"
            )
        if self.at_hit < 1:
            raise ValueError("at_hit is 1-based and must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.truncate_at < 0:
            raise ValueError("truncate_at must be >= 0")

    def matches(self, hit: int) -> bool:
        """Whether this spec fires on the ``hit``-th hit of its point."""
        return hit == self.at_hit or (self.every and hit > self.at_hit)


class FaultSchedule:
    """A deterministic, thread-safe set of armed faults.

    Hit counters are per-point and shared across threads, so a schedule
    replayed against the same request sequence injects the same faults.
    ``injections()`` reports what actually fired (a ``truncate`` armed
    beyond the stream length never does), letting chaos tests assert
    their faults landed.
    """

    def __init__(
        self, specs: Sequence[FaultSpec], seed: Optional[int] = None
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._by_point: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_point.setdefault(spec.point.name, []).append(spec)
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}

    # -- bookkeeping ----------------------------------------------------
    def hits(self, point: FaultPoint) -> int:
        """How many times ``point`` has been reached under this schedule."""
        with self._lock:
            return self._hits.get(point.name, 0)

    def injections(self) -> Dict[str, int]:
        """Point name -> number of faults actually injected."""
        with self._lock:
            return dict(self._injected)

    def total_injected(self) -> int:
        """Total faults actually injected across all points."""
        with self._lock:
            return sum(self._injected.values())

    def _record(self, point: FaultPoint) -> None:
        with self._lock:
            self._injected[point.name] = self._injected.get(point.name, 0) + 1
        registry = installed()
        if registry is not None:
            registry.inc(
                "ppkws_faults_injected_total", labels={"point": point.name}
            )

    # -- the injection machinery ----------------------------------------
    def _arm(self, point: FaultPoint) -> Optional[FaultSpec]:
        """Count one hit of ``point``; return the spec due to fire, if any."""
        with self._lock:
            hit = self._hits.get(point.name, 0) + 1
            self._hits[point.name] = hit
        for spec in self._by_point.get(point.name, ()):
            if spec.matches(hit):
                return spec
        return None

    def _act(self, point: FaultPoint, spec: FaultSpec) -> None:
        self._record(point)
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "kill":
            raise WorkerKilledError(point.name)
        if spec.kind == "truncate":
            # truncate outside a write stream degrades to a torn-write
            # raise at offset 0 (nothing was written).
            raise TornWriteError(point.name, 0)
        raise FaultInjectedError(point.name)

    def fire(self, point: FaultPoint) -> None:
        """Count one hit of ``point`` and act if a spec is due."""
        spec = self._arm(point)
        if spec is not None:
            self._act(point, spec)

    def wrap_write(
        self, fh: IO[str], point: FaultPoint
    ) -> Union[IO[str], "_TruncatingWriter"]:
        """Count one hit of stream-``point``; maybe wrap ``fh``.

        A due ``truncate`` spec returns a proxy that tears the stream at
        ``truncate_at`` bytes; any other due spec acts immediately (so a
        ``raise`` armed on the stream point fails the write up front).
        """
        spec = self._arm(point)
        if spec is None:
            return fh
        if spec.kind != "truncate":
            self._act(point, spec)
            return fh
        return _TruncatingWriter(fh, point, spec, self)


class _TruncatingWriter:
    """Write proxy that persists a prefix then simulates a crash.

    Only ``write`` is proxied — the atomic-write helpers never call
    anything else on the stream they expose.
    """

    def __init__(
        self,
        fh: IO[str],
        point: FaultPoint,
        spec: FaultSpec,
        schedule: FaultSchedule,
    ) -> None:
        self._fh = fh
        self._point = point
        self._spec = spec
        self._schedule = schedule
        self._written = 0

    def write(self, data: str) -> int:
        remaining = self._spec.truncate_at - self._written
        if len(data) <= remaining:
            self._written += len(data)
            return self._fh.write(data)
        if remaining > 0:
            self._fh.write(data[:remaining])
        self._fh.flush()
        self._schedule._record(self._point)
        raise TornWriteError(self._point.name, self._spec.truncate_at)


# ----------------------------------------------------------------------
# activation: one module-level slot, checked by every production hook
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultSchedule] = None
_ACTIVE_LOCK = threading.Lock()


def is_active() -> bool:
    """Whether any fault schedule is currently active (the hot check)."""
    return _ACTIVE is not None


def active() -> Optional[FaultSchedule]:
    """The active schedule, or ``None``."""
    return _ACTIVE


def fire(point: FaultPoint) -> None:
    """Hit ``point`` against the active schedule; no-op when inactive."""
    schedule = _ACTIVE
    if schedule is None:
        return
    schedule.fire(point)


def wrap_write(
    fh: IO[str], point: FaultPoint
) -> Union[IO[str], _TruncatingWriter]:
    """Hit stream-``point``; returns ``fh`` (possibly wrapped)."""
    schedule = _ACTIVE
    if schedule is None:
        return fh
    return schedule.wrap_write(fh, point)


@contextmanager
def injected(schedule: FaultSchedule) -> Iterator[FaultSchedule]:
    """Activate ``schedule`` for the dynamic extent of the block.

    Nests: the previous schedule (usually ``None``) is restored on exit.
    Activation is process-wide — faults fire on *every* thread, which is
    exactly what a chaos test driving a worker pool wants.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = schedule
    try:
        yield schedule
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous


def activate(schedule: Optional[FaultSchedule]) -> None:
    """Install ``schedule`` process-wide (``None`` clears it).

    The imperative counterpart of :func:`injected` for contexts with no
    enclosing block to scope the activation — chiefly a shard worker
    installing a schedule the parent shipped over its pipe.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = schedule


def deactivate() -> None:
    """Clear any active schedule (e.g. one installed from the env)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


# ----------------------------------------------------------------------
# schedule construction: seeded and env-var forms
# ----------------------------------------------------------------------
def seeded_schedule(
    seed: int,
    points: Optional[Sequence[FaultPoint]] = None,
    faults: int = 4,
    max_hit: int = 5,
) -> FaultSchedule:
    """A deterministic pseudo-random schedule: same seed, same faults.

    Draws ``faults`` specs over ``points`` (default: the full catalogue)
    with kinds appropriate to each point (``truncate`` only at stream
    points), hits in ``[1, max_hit]``, small delays, and truncation
    offsets spread over typical index-file sizes.
    """
    import random

    rng = random.Random(seed)
    pool = list(points if points is not None else all_points())
    if not pool:
        raise ValueError("seeded_schedule needs at least one point")
    specs: List[FaultSpec] = []
    for _ in range(faults):
        point = rng.choice(pool)
        kinds = ["raise", "kill", "delay"] + (["truncate"] if point.stream else [])
        kind = rng.choice(kinds)
        specs.append(
            FaultSpec(
                point,
                kind,
                at_hit=rng.randint(1, max_hit),
                every=False,
                delay_s=round(rng.uniform(0.001, 0.01), 4),
                truncate_at=rng.randint(0, 4096),
            )
        )
    return FaultSchedule(specs, seed=seed)


def _parse_entry(entry: str) -> FaultSpec:
    # point:kind[@hit[+]][:arg]
    parts = entry.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad fault spec {entry!r} (want point:kind[@hit[+]][:arg])"
        )
    point = point_named(parts[0].strip())
    kind_part = parts[1].strip()
    at_hit, every = 1, False
    if "@" in kind_part:
        kind_part, _, hit_part = kind_part.partition("@")
        hit_part = hit_part.strip()
        if hit_part.endswith("+"):
            every = True
            hit_part = hit_part[:-1]
        try:
            at_hit = int(hit_part)
        except ValueError:
            raise ValueError(f"bad hit count in fault spec {entry!r}") from None
    kind = kind_part.strip()
    delay_s, truncate_at = 0.0, 0
    if len(parts) == 3:
        arg = parts[2].strip()
        try:
            if kind == "delay":
                delay_s = float(arg)
            elif kind == "truncate":
                truncate_at = int(arg)
            else:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"bad argument {arg!r} for kind {kind!r} in fault spec "
                f"{entry!r}"
            ) from None
    return FaultSpec(
        point, kind, at_hit=at_hit, every=every,
        delay_s=delay_s, truncate_at=truncate_at,
    )


def schedule_from_env(value: str) -> FaultSchedule:
    """Parse a ``PPKWS_FAULTS`` spec string into a schedule.

    ``"seed:N"`` builds :func:`seeded_schedule(N)`; otherwise the value
    is ``;``-separated ``point:kind[@hit[+]][:arg]`` entries.
    """
    value = value.strip()
    if value.startswith("seed:"):
        try:
            seed = int(value[len("seed:"):])
        except ValueError:
            raise ValueError(f"bad seed in {value!r}") from None
        return seeded_schedule(seed)
    entries = [e.strip() for e in value.split(";") if e.strip()]
    if not entries:
        raise ValueError("empty PPKWS_FAULTS spec")
    return FaultSchedule([_parse_entry(e) for e in entries])


def _activate_from_env() -> None:
    raw = os.environ.get(ENV_VAR)
    if raw:
        global _ACTIVE
        _ACTIVE = schedule_from_env(raw)


_activate_from_env()
