"""The injection-point catalogue: every :class:`FaultPoint`, in one place.

A fault point is a *name* for one place in the production code where the
fault layer may act — nothing more.  The constants below are the only
sanctioned way to refer to a point: call sites pass the constant, never
a string literal, so a renamed point breaks loudly at import time
instead of silently disarming a chaos schedule (enforced by analysis
rule **RA007**).

The catalogue is mirrored in the README's "Fault tolerance & crash
safety" section; ``tests/test_faults.py`` asserts the two stay in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "FaultPoint",
    "PERSIST_SAVE_WRITE",
    "PERSIST_SAVE_FSYNC",
    "PERSIST_SAVE_RENAME",
    "PERSIST_LOAD_READ",
    "GRAPH_SAVE_WRITE",
    "GRAPH_SAVE_FSYNC",
    "GRAPH_SAVE_RENAME",
    "GRAPH_LOAD_READ",
    "EXECUTOR_WORKER",
    "SHARD_WORKER",
    "CACHE_LOOKUP",
    "CACHE_STORE",
    "RWLOCK_ACQUIRE_READ",
    "RWLOCK_ACQUIRE_WRITE",
    "SERVICE_EXECUTE",
    "ENGINE_STEP",
    "all_points",
    "point_named",
]


@dataclass(frozen=True)
class FaultPoint:
    """One named place where a fault schedule may act.

    ``stream`` marks write-stream points: only those support the
    ``truncate`` action (byte-accurate torn writes via
    :func:`repro.faults.wrap_write`); at non-stream points a
    ``truncate`` spec degrades to a raise.
    """

    name: str
    layer: str  # "persist" | "graph-io" | "serving" | "service" | "core"
    description: str
    stream: bool = False


_REGISTRY: Dict[str, FaultPoint] = {}


def _point(
    name: str, layer: str, description: str, stream: bool = False
) -> FaultPoint:
    if name in _REGISTRY:
        raise ValueError(f"duplicate fault point {name!r}")
    point = FaultPoint(name, layer, description, stream)
    _REGISTRY[name] = point
    return point


# -- index persistence (repro.core.persist) ----------------------------
PERSIST_SAVE_WRITE = _point(
    "persist.save.write", "persist",
    "byte stream of the index tmp-file write (truncate = torn write)",
    stream=True,
)
PERSIST_SAVE_FSYNC = _point(
    "persist.save.fsync", "persist",
    "crash after the index tmp file is written but before fsync",
)
PERSIST_SAVE_RENAME = _point(
    "persist.save.rename", "persist",
    "crash after fsync but before the atomic rename over the index path",
)
PERSIST_LOAD_READ = _point(
    "persist.load.read", "persist",
    "I/O failure opening/reading the index file in load_index",
)

# -- graph text persistence (repro.graph.io) ---------------------------
GRAPH_SAVE_WRITE = _point(
    "graph.save.write", "graph-io",
    "byte stream of the graph tmp-file write (truncate = torn write)",
    stream=True,
)
GRAPH_SAVE_FSYNC = _point(
    "graph.save.fsync", "graph-io",
    "crash after the graph tmp file is written but before fsync",
)
GRAPH_SAVE_RENAME = _point(
    "graph.save.rename", "graph-io",
    "crash after fsync but before the atomic rename over the graph path",
)
GRAPH_LOAD_READ = _point(
    "graph.load.read", "graph-io",
    "I/O failure opening/reading a graph file in load_graph",
)

# -- the serving layer (repro.serving) ---------------------------------
EXECUTOR_WORKER = _point(
    "serving.executor.worker", "serving",
    "executor worker body after dequeue, before execute (kill = worker death)",
)
SHARD_WORKER = _point(
    "serving.shards.worker", "serving",
    "shard worker body after a task is received (kill = shard process death)",
)
CACHE_LOOKUP = _point(
    "serving.cache.lookup", "serving",
    "answer-cache lookup (the service degrades a failure to a miss)",
)
CACHE_STORE = _point(
    "serving.cache.store", "serving",
    "answer-cache store (the service drops the insert, keeps the answer)",
)
RWLOCK_ACQUIRE_READ = _point(
    "serving.rwlock.acquire_read", "serving",
    "before a reader enters a network's RWLock (delay = slow reader)",
)
RWLOCK_ACQUIRE_WRITE = _point(
    "serving.rwlock.acquire_write", "serving",
    "before a writer enters a network's RWLock (delay = slow admin op)",
)

# -- the service facade (repro.service) --------------------------------
SERVICE_EXECUTE = _point(
    "service.execute", "service",
    "top of PPKWSService.execute, inside the error boundary",
)

# -- the query engine (repro.core.engine) ------------------------------
ENGINE_STEP = _point(
    "core.engine.step", "core",
    "before each pipeline step in run_pipeline (raise = failed step)",
)


def all_points() -> Tuple[FaultPoint, ...]:
    """Every registered fault point, in registration order."""
    return tuple(_REGISTRY.values())


def point_named(name: str) -> FaultPoint:
    """The :class:`FaultPoint` called ``name`` (``ValueError`` if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown fault point {name!r} (known points: {known})"
        ) from None
