"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  write a synthetic dataset (public + private graphs) to disk
``index``     build and persist the public index (PageRank/PADS/KPADS)
``query``     run a Blinks / r-clique / k-nk query over a stored dataset
``bench``     run one paper experiment and print its table

The CLI works entirely over the text graph format of
:mod:`repro.graph.io` and the JSON-lines index format of
:mod:`repro.core.persist`, so a dataset generated once can be indexed and
queried across runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, List, Optional

from repro.core.framework import PPKWS, PublicIndex
from repro.core.persist import load_index, save_index
from repro.datasets.queries import generate_keyword_queries, generate_knk_queries
from repro.datasets.synthetic import DATASET_BUILDERS, dataset_by_name
from repro.graph.io import load_graph, mixed_vertex, save_graph

__all__ = ["main", "build_parser"]


def _vertex_type(name: str) -> Callable[[str], object]:
    if name == "int":
        return int
    if name == "str":
        return str
    return mixed_vertex


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs = {"seed": args.seed}
    if args.vertices is not None:
        if args.dataset == "ppdblp":
            kwargs["num_communities"] = max(1, args.vertices // 40)
            kwargs["community_size"] = 40
        else:
            kwargs["num_vertices"] = args.vertices
    dataset = dataset_by_name(args.dataset, **kwargs)
    os.makedirs(args.out, exist_ok=True)
    public_path = os.path.join(args.out, "public.graph")
    save_graph(dataset.public, public_path)
    print(f"wrote {public_path} ({dataset.public.num_vertices} vertices)")
    for owner in dataset.owners():
        path = os.path.join(args.out, f"private_{owner}.graph")
        save_graph(dataset.private(owner), path)
        print(f"wrote {path} ({dataset.private(owner).num_vertices} vertices)")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph, vertex_type=_vertex_type(args.vertex_type))
    start = time.perf_counter()
    index = PublicIndex.build(graph, k=args.k)
    elapsed = time.perf_counter() - start
    save_index(index, args.out)
    print(
        f"built PADS/KPADS over {graph.num_vertices} vertices in {elapsed:.1f}s "
        f"({index.pads.total_entries} sketch entries) -> {args.out}"
    )
    return 0


def _load_engine(args: argparse.Namespace) -> PPKWS:
    public = load_graph(args.public, vertex_type=_vertex_type(args.vertex_type))
    index = load_index(public, args.index) if args.index else None
    engine = PPKWS(public, sketch_k=args.k, index=index)
    private = load_graph(args.private, vertex_type=_vertex_type(args.vertex_type))
    engine.attach("cli", private)
    return engine


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    if args.semantic in ("blinks", "rclique"):
        if not args.keywords:
            print("error: --keywords is required for blinks/rclique",
                  file=sys.stderr)
            return 2
        keywords = args.keywords.split(",")
        run = engine.blinks if args.semantic == "blinks" else engine.rclique
        result = run("cli", keywords, args.tau, k=args.top)
        print(f"{len(result.answers)} public-private answers "
              f"(PEval {result.breakdown.peval*1e3:.1f}ms, "
              f"ARefine {result.breakdown.arefine*1e3:.1f}ms, "
              f"AComplete {result.breakdown.acomplete*1e3:.1f}ms)")
        for ans in result.answers:
            matches = {q: (m.vertex, m.distance) for q, m in ans.matches.items()}
            print(f"  root={ans.root!r} weight={ans.weight():g} {matches}")
    elif args.semantic == "knk":
        if args.source is None or not args.keywords:
            print("error: knk needs --source and --keywords <one keyword>",
                  file=sys.stderr)
            return 2
        source: object = args.source
        private = engine.attachment("cli").private
        if source not in private:
            try:
                source = int(args.source)
            except ValueError:
                pass
        result = engine.knk("cli", source, args.keywords, args.top)
        print(f"{len(result.answer.matches)} matches")
        for m in result.answer.matches:
            print(f"  {m.vertex!r} at distance {m.distance:g}")
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imported lazily: bench pulls in the harness machinery.
    from repro.bench.experiments import build_setup
    from repro.bench.harness import (
        run_keyword_experiment,
        run_knk_experiment,
        select_representative,
    )
    from repro.bench.reporting import render_breakdown, render_query_comparison

    setup = build_setup(args.dataset, scale=args.scale)
    if args.semantic == "knk":
        queries = generate_knk_queries(
            setup.dataset.public, setup.private, num_queries=args.queries,
            seed=args.seed,
        )
        timings = run_knk_experiment(
            setup.engine, setup.owner, queries, setup.combined
        )
    else:
        kw_queries = generate_keyword_queries(
            setup.dataset.public, setup.private, num_queries=args.queries,
            tau=args.tau, seed=args.seed,
        )
        timings = run_keyword_experiment(
            setup.engine, setup.owner, args.semantic, kw_queries,
            setup.combined, k=args.top,
        )
    chosen = select_representative(timings, min(10, len(timings)))
    title = f"{args.semantic} on {args.dataset} ({args.scale} scale)"
    print(render_query_comparison(title, chosen), end="")
    print(render_breakdown(title + " breakdown", chosen), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PPKWS: keyword search on public-private networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic dataset")
    p_gen.add_argument("--dataset", choices=sorted(DATASET_BUILDERS), required=True)
    p_gen.add_argument("--vertices", type=int, default=None)
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.add_argument("--out", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_idx = sub.add_parser("index", help="build and persist the public index")
    p_idx.add_argument("--graph", required=True)
    p_idx.add_argument("--out", required=True)
    p_idx.add_argument("--k", type=int, default=2)
    p_idx.add_argument("--vertex-type", choices=["int", "str", "mixed"], default="mixed")
    p_idx.set_defaults(func=_cmd_index)

    p_q = sub.add_parser("query", help="run a query over stored graphs")
    p_q.add_argument("--public", required=True)
    p_q.add_argument("--private", required=True)
    p_q.add_argument("--index", default=None,
                     help="persisted index (built if omitted)")
    p_q.add_argument("--semantic", choices=["blinks", "rclique", "knk"],
                     required=True)
    p_q.add_argument("--keywords", default=None,
                     help="comma-separated keywords (one keyword for knk)")
    p_q.add_argument("--source", default=None, help="k-nk query vertex")
    p_q.add_argument("--tau", type=float, default=5.0)
    p_q.add_argument("--top", type=int, default=10)
    p_q.add_argument("--k", type=int, default=2, help="sketch parameter")
    p_q.add_argument("--vertex-type", choices=["int", "str", "mixed"], default="mixed")
    p_q.set_defaults(func=_cmd_query)

    p_b = sub.add_parser("bench", help="run one paper experiment")
    p_b.add_argument("--dataset", choices=["yago", "dbpedia", "ppdblp"],
                     required=True)
    p_b.add_argument("--semantic", choices=["blinks", "rclique", "knk"],
                     required=True)
    p_b.add_argument("--scale", choices=["small", "bench"], default="small")
    p_b.add_argument("--queries", type=int, default=5)
    p_b.add_argument("--tau", type=float, default=5.0)
    p_b.add_argument("--top", type=int, default=10)
    p_b.add_argument("--seed", type=int, default=101)
    p_b.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
