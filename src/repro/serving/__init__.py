"""The concurrent serving layer: worker pool, rwlocks and answer cache.

This package holds the serving-side machinery the facade composes:

* :class:`~repro.serving.executor.ServiceExecutor` — a bounded worker
  pool running request dicts through ``service.execute`` concurrently
  (``submit`` -> future, ``execute_many`` -> ordered responses).
* :class:`~repro.serving.rwlock.RWLock` — the writer-preferring
  reader-writer lock the service takes per network: read-only queries
  share it, admin ops (attach / detach / drop) take it exclusively.
* :class:`~repro.serving.cache.AnswerCache` — the cross-request LRU+TTL
  answer cache with epoch-based invalidation (every admin op bumps the
  network's epoch, so a stale answer can never be served).
* :mod:`~repro.serving.shards` — the process-based tier: the public
  graph's CSR buffers exported to shared memory, one service replica
  per shard *process*, scatter-gather with monotonic-bound merging.
  ``ServiceExecutor(..., mode="process")`` turns it on.
"""

from repro.serving.cache import AnswerCache
from repro.serving.executor import ServiceExecutor
from repro.serving.rwlock import RWLock
from repro.serving.shards import LocalShardPlan, ShardServingPool

__all__ = [
    "AnswerCache",
    "LocalShardPlan",
    "RWLock",
    "ServiceExecutor",
    "ShardServingPool",
]
