"""Process-based shard serving: shared-memory CSR shards behind a pool.

Threads cannot multiply CPU-bound keyword-search throughput under the
GIL — the serving benchmark's ``workers_only_speedup`` hovered around
1x no matter how many workers the :class:`~repro.serving.executor.
ServiceExecutor` ran.  This module is the escape hatch, following DKWS
(the same authors' distributed successor to PPKWS): evaluate per
partition in separate *processes*, merge with monotonic bounds, and
notify-push a tightening bound so shards stop early.

Architecture
------------

* **Shared-memory replicas.**  The public graph's flat CSR buffers are
  exported once into ``multiprocessing.shared_memory`` segments
  (:meth:`repro.graph.frozen.FrozenGraph.export_shared`) and every
  worker re-attaches zero-copy — k workers cost one copy of the
  adjacency payload, not k.  The (cheap, picklable) PADS/KPADS sketches
  ride along in the admin log, so workers never rebuild the index.
* **Edge-cut partition.**  Interned vertex ids are split into
  contiguous ranges balanced by CSR edge count; the crossing-edge count
  per boundary (the *frontier*, the moral equivalent of the paper's
  portal table) is reported in :meth:`ShardServingPool.health`.
* **Workers.**  Each shard is one ``spawn``-ed process running a full
  :class:`~repro.service.PPKWSService` replica (answer cache off — the
  parent's cache is authoritative).  Admin ops are *replayed* from an
  ordered log: the parent broadcasts every ``create`` / ``attach`` /
  ``detach`` / ``drop`` and keeps the log so a respawned worker can be
  rebuilt from scratch.
* **Two read paths.**  :meth:`ShardServingPool.route` ships a whole
  request to one worker (round-robin) — the default for cache-eligible
  queries, putting the entire evaluation outside the parent's GIL.
  :meth:`ShardServingPool.plan` returns a scatter-gather plan a
  ``sharded_run`` pipeline step uses to fan one query's AComplete out
  across *all* workers (request field ``"fanout": true``).
* **Notify-push bounds.**  ``scatter`` allocates a ticket in a shared
  ``Array('d')``; after each shard's result merges, the tightened bound
  is written there and still-running shards read it between work items,
  cancelling work whose cost floor exceeds it.  Bounds are monotone
  under min-merging, so pruning never changes the final top-k — the
  equivalence suite pins sharded answers bit-identical to serial ones.

Fault injection: the ``serving.shards.worker`` point fires in the
worker after every task/request receive.  A ``kill`` there exits the
process (the real crash); the parent maps the dead pipe to a
well-formed ``code: "internal"`` response, respawns the worker and
replays the admin log — chaos tests assert the pool self-heals.

Metrics: ``ppkws_shard_requests_total{kind}``,
``ppkws_shard_merge_seconds``, ``ppkws_shard_respawns_total``,
``ppkws_shard_cancelled_total`` (see the README catalogue / RA003).
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import FaultInjectedError, ReproError, WorkerKilledError
from repro.faults.points import SHARD_WORKER
from repro.graph.frozen import FrozenGraph, freeze
from repro.obs.registry import MetricsRegistry

__all__ = ["LocalShardPlan", "ShardPartition", "ShardServingPool"]

#: one scatter-gather in flight per slot of the shared bound array
_MAX_TICKETS = 64

_INF = float("inf")

#: task tuple accepted by ``scatter``: (shard index, payload, cost floor)
ShardTask = Tuple[int, Dict[str, Any], float]


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
class ShardPartition:
    """Contiguous interned-id ranges balanced by CSR edge count.

    ``starts[i]`` is the first id of shard ``i``; :meth:`shard_of` is a
    dict lookup plus a bisect.  ``frontier`` counts the edges whose
    endpoints land in different shards — the cut size the partition
    pays, reported in pool health.
    """

    def __init__(self, graph: Any, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        frozen = graph if isinstance(graph, FrozenGraph) else freeze(graph)
        # Balancing needs per-vertex edge counts and the frontier needs
        # raw neighbor ids — one O(E) pass over the flat buffers, vs.
        # E dict lookups through the protocol.
        indptr, indices, _ = frozen.csr()  # ra: ignore[RA005]
        n = frozen.num_vertices
        total = indptr[n] if n else 0
        self.num_shards = shards
        self._id_of = {v: i for i, v in enumerate(frozen.vertex_table)}
        # Greedy sweep: close a shard once it holds its fair share of
        # the remaining edge endpoints (leaving at least one id per
        # remaining shard).
        starts: List[int] = [0]
        acc = 0
        for i in range(n):
            if len(starts) >= shards:
                break
            acc += indptr[i + 1] - indptr[i]
            if acc * shards >= total * len(starts) and i + 1 <= n - (
                shards - len(starts)
            ):
                starts.append(i + 1)
        while len(starts) < shards:  # tiny graphs: pad with empty shards
            starts.append(n)
        self.starts: Tuple[int, ...] = tuple(starts)
        self.frontier = sum(
            1
            for i in range(n)
            for pos in range(indptr[i], indptr[i + 1])
            if i < indices[pos]
            and self._shard_of_id(i) != self._shard_of_id(indices[pos])
        )

    def _shard_of_id(self, i: int) -> int:
        return bisect.bisect_right(self.starts, i) - 1

    def shard_of(self, vertex: Any) -> int:
        """The shard owning ``vertex`` (shard 0 for private-only ids)."""
        i = self._id_of.get(vertex)
        return self._shard_of_id(i) if i is not None else 0

    def sizes(self) -> List[int]:
        """Vertices per shard."""
        n = len(self._id_of)
        ends = list(self.starts[1:]) + [n]
        return [e - s for s, e in zip(self.starts, ends)]


# ----------------------------------------------------------------------
# the in-process plan (tests / dict-backend fallback)
# ----------------------------------------------------------------------
class LocalShardPlan:
    """Scatter-gather over the *local* engine: same plan surface, no IPC.

    Runs every shard task inline through the registered handler against
    the parent's own engine, preserving the scatter order, bound updates
    and cancellation logic — so the equivalence suite can pin the
    sharded step bodies bit-identical to the serial ones on any backend
    without paying for a process pool.
    """

    def __init__(self, engine: Any, shards: int = 2, owner: str = "") -> None:
        self.partition = ShardPartition(engine.public, shards)
        self._engine = engine
        self._owner = owner
        self.tasks_run = 0
        self.tasks_cancelled = 0

    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    def shard_of(self, vertex: Any) -> int:
        return self.partition.shard_of(vertex)

    def engine(self, network: str) -> Any:
        """Host hook for task handlers: the one local engine."""
        return self._engine

    def scatter(
        self,
        kind: str,
        tasks: List[ShardTask],
        initial_bound: float,
        on_result: Callable[[Any], float],
    ) -> None:
        from repro.core.engine import shard_task

        handler = shard_task(kind)
        bound = initial_bound

        def read_bound() -> float:
            return bound

        for _, payload, cost_floor in sorted(tasks, key=lambda t: t[0]):
            if cost_floor > bound:
                self.tasks_cancelled += 1
                continue
            self.tasks_run += 1
            result = handler(self, "local", self._owner, payload, read_bound)
            bound = min(bound, on_result(result))


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
class _WorkerHost:
    """What a shard task sees in the worker: engines plus the bound."""

    def __init__(self, service: Any) -> None:
        self.service = service

    def engine(self, network: str) -> Any:
        return self.service._engine(network)


def _apply_admin(host: _WorkerHost, pending: Dict[str, list], rec: tuple) -> None:
    """Apply one admin-log record to the worker's replica service.

    ``attach`` for a network this worker has not created yet is buffered
    and applied right after its ``create`` — enable-time replication can
    race a concurrent attach broadcast, and the log keeps both.
    """
    from repro.core.framework import PPKWS, PublicIndex

    op = rec[0]
    svc = host.service
    if op == "create":
        _, name, handle, (pads, kpads, scores), options = rec
        graph = FrozenGraph.from_shared(handle)
        engine = PPKWS(
            graph, options=options,
            index=PublicIndex(graph, pads, kpads, scores),
        )
        svc.adopt_network(name, engine)
        for owner, private in pending.pop(name, ()):
            svc.attach_user(name, owner, private)
    elif op == "attach":
        _, network, owner, private = rec
        if network in svc.networks():
            # Replay is idempotent: enable-time replication can race an
            # attach broadcast and the log legitimately holds both.
            if owner in svc._engine(network).owners():
                svc.detach_user(network, owner)
            svc.attach_user(network, owner, private)
        else:
            pending.setdefault(network, []).append((owner, private))
    elif op == "detach":
        _, network, owner = rec
        if network in svc.networks():
            svc.detach_user(network, owner)
    elif op == "drop":
        _, name = rec
        pending.pop(name, None)
        if name in svc.networks():
            graph = svc._engine(name).public
            svc.drop_network(name)
            if isinstance(graph, FrozenGraph):
                # Unpin the shared pages now — a GC'd memoryview export
                # would otherwise make SharedMemory.__del__ noisy.
                graph.release_shared()
    else:  # pragma: no cover - protocol drift guard
        raise ReproError(f"unknown admin record {op!r}")


def _shard_worker_main(shard_id: int, conn: Any, bounds: Any) -> None:
    """Spawn entry point: serve one shard until ``stop`` or death."""
    from repro import faults
    from repro.core.engine import ensure_builtin_semantics, shard_task
    from repro.service import PPKWSService

    ensure_builtin_semantics()
    svc = PPKWSService(answer_cache_size=0)
    host = _WorkerHost(svc)
    pending: Dict[str, list] = {}
    conn.send(("ready", shard_id))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            os._exit(0)
        op = msg[0]
        if op == "stop":
            for name in svc.networks():
                graph = svc._engine(name).public
                if isinstance(graph, FrozenGraph):
                    graph.release_shared()  # unpin before interpreter exit
            conn.send(("ok", None))
            return
        if op == "ping":
            conn.send(("ok", shard_id))
            continue
        if op == "faults":
            _, specs, seed = msg
            faults.activate(
                faults.FaultSchedule(specs, seed) if specs is not None else None
            )
            conn.send(("ok", None))
            continue
        if op == "admin":
            try:
                _apply_admin(host, pending, msg[1])
            except ReproError as exc:
                conn.send(("error", type(exc).__name__, str(exc)))
            else:
                conn.send(("ok", None))
            continue
        # task / execute: the injection point for shard-process chaos.
        try:
            faults.fire(SHARD_WORKER)
        except WorkerKilledError:
            os._exit(1)  # the real thing: no reply, no cleanup
        except FaultInjectedError as exc:
            conn.send(("error", type(exc).__name__, str(exc)))
            continue
        if op == "execute":
            conn.send(("ok", svc.execute(msg[1])))
        elif op == "task":
            _, kind, network, owner, payload, ticket = msg
            try:
                handler = shard_task(kind)
                result = handler(
                    host, network, owner, payload, lambda: bounds[ticket]
                )
            except ReproError as exc:
                conn.send(("error", type(exc).__name__, str(exc)))
            else:
                conn.send(("ok", result))
        else:  # pragma: no cover - protocol drift guard
            conn.send(("error", "ReproError", f"unknown message {op!r}"))


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side handle: process + pipe + the lock serializing both."""

    __slots__ = ("shard_id", "process", "conn", "lock")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.process: Any = None
        self.conn: Any = None
        #: held across every send+recv pair so replies cannot be stolen
        self.lock = threading.Lock()


class ShardServingPool:
    """k shard-worker processes plus the scatter-gather machinery.

    Construct via :meth:`repro.service.PPKWSService.enable_sharding`,
    which also replays existing networks into the pool and broadcasts
    subsequent admin ops.  ``registry`` (usually the service's) receives
    the shard metrics.  The pool owns the shared-memory segments it
    exports and unlinks them in :meth:`shutdown`.
    """

    def __init__(
        self,
        shards: int = 2,
        registry: Optional[MetricsRegistry] = None,
        spawn_timeout_s: float = 60.0,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        import multiprocessing

        self._ctx = multiprocessing.get_context("spawn")
        self._registry = registry
        self._spawn_timeout_s = spawn_timeout_s
        #: scatter bound slots shared with every worker (inherited)
        self._bounds = self._ctx.Array("d", _MAX_TICKETS, lock=False)
        self._ticket_lock = threading.Lock()
        self._next_ticket = 0
        #: the replayable admin history (records as shipped to workers)
        self._log: List[tuple] = []
        self._log_lock = threading.Lock()
        #: network -> live shared-memory segments (owned by the pool)
        self._segments: Dict[str, list] = {}
        #: network -> parent-side partition (feeds plan()/health())
        self._partitions: Dict[str, ShardPartition] = {}
        #: the last fault schedule shipped (re-armed on respawn)
        self._fault_state: Tuple[Optional[tuple], Optional[int]] = (None, None)
        self._respawns = 0
        self._rr = 0
        self._rr_lock = threading.Lock()
        self._shutdown = False
        self._workers = [_Worker(i) for i in range(shards)]
        try:
            for w in self._workers:
                self._start_worker(w)
        except BaseException:
            self.shutdown()
            raise

    # -- lifecycle ------------------------------------------------------
    def _start_worker(self, w: _Worker) -> None:
        """(Re)spawn ``w`` and replay the admin log into it."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(w.shard_id, child_conn, self._bounds),
            name=f"ppkws-shard-{w.shard_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        if not parent_conn.poll(self._spawn_timeout_s):
            proc.terminate()
            raise ReproError(
                f"shard worker {w.shard_id} failed to start within "
                f"{self._spawn_timeout_s}s"
            )
        parent_conn.recv()  # ("ready", shard_id)
        w.process, w.conn = proc, parent_conn
        for rec in list(self._log):
            parent_conn.send(("admin", rec))
            parent_conn.recv()
        specs, seed = self._fault_state
        if specs is not None:
            parent_conn.send(("faults", specs, seed))
            parent_conn.recv()

    def _respawn_locked(self, w: _Worker) -> None:
        """Replace a dead worker (caller holds ``w.lock``)."""
        try:
            if w.process is not None:
                w.process.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover
            pass
        if w.conn is not None:
            w.conn.close()
        self._respawns += 1
        if self._registry is not None:
            self._registry.inc("ppkws_shard_respawns_total")
        self._start_worker(w)

    def _call(self, w: _Worker, msg: tuple) -> tuple:
        """One send+recv round trip; respawns on a dead pipe and raises."""
        with w.lock:
            try:
                w.conn.send(msg)
                status: tuple = w.conn.recv()
                return status
            except (EOFError, OSError, BrokenPipeError):
                self._respawn_locked(w)
                raise FaultInjectedError(
                    SHARD_WORKER.name,
                    f"shard worker {w.shard_id} died mid-request "
                    "(respawned from the admin log)",
                ) from None

    def shutdown(self) -> None:
        """Stop workers, close pipes, unlink every shared segment."""
        if self._shutdown:
            return
        self._shutdown = True
        for w in self._workers:
            with w.lock:
                if w.conn is None:
                    continue
                try:
                    w.conn.send(("stop",))
                    if w.conn.poll(5.0):
                        w.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    pass
                w.conn.close()
                if w.process is not None:
                    w.process.join(timeout=5.0)
                    if w.process.is_alive():  # pragma: no cover
                        w.process.terminate()
        for segments in self._segments.values():
            for seg in segments:
                try:
                    seg.close()
                    seg.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        self._segments.clear()

    def __enter__(self) -> "ShardServingPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # -- admin replication ----------------------------------------------
    def _broadcast(self, rec: tuple) -> None:
        """Append ``rec`` to the log and apply it on every worker.

        A worker that rejects or dies on the record is rebuilt from the
        (already updated) log — replication converges on the log, so a
        transient worker failure cannot fork the replicas.
        """
        with self._log_lock:
            self._log.append(rec)
            for w in self._workers:
                with w.lock:
                    try:
                        w.conn.send(("admin", rec))
                        status = w.conn.recv()
                    except (EOFError, OSError, BrokenPipeError):
                        self._respawn_locked(w)
                        continue
                    if status[0] != "ok":
                        self._respawn_locked(w)

    def _compact_log(self, network: str) -> None:
        """Drop a network's records once a ``drop`` supersedes them."""
        self._log = [
            rec for rec in self._log
            if not (len(rec) > 1 and rec[1] == network)
        ]

    def admin_create(self, name: str, engine: Any) -> None:
        """Replicate ``name``: export the graph, ship handle + index."""
        graph = engine.public
        frozen = graph if isinstance(graph, FrozenGraph) else freeze(graph)
        handle, segments = frozen.export_shared()
        self._segments[name] = segments
        self._partitions[name] = ShardPartition(frozen, len(self._workers))
        index = engine.index
        self._broadcast((
            "create", name, handle,
            (index.pads, index.kpads, index.pagerank_scores),
            engine.options,
        ))

    def admin_attach(self, network: str, owner: str, private: Any) -> None:
        self._broadcast(("attach", network, owner, private))

    def admin_detach(self, network: str, owner: str) -> None:
        self._broadcast(("detach", network, owner))

    def admin_drop(self, name: str) -> None:
        with self._log_lock:
            self._compact_log(name)
        self._broadcast(("drop", name))
        self._partitions.pop(name, None)
        for seg in self._segments.pop(name, ()):  # workers re-attach no more
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    # -- fault shipping --------------------------------------------------
    def inject_faults(self, schedule: Any) -> None:
        """Arm ``schedule`` (or ``None``) in every worker process.

        Ships ``(specs, seed)`` — a :class:`~repro.faults.FaultSchedule`
        holds a lock and cannot travel whole — and remembers them so a
        respawned worker comes back with the same faults armed (a chaos
        run keeps chaosing through kills).
        """
        state = (
            (tuple(schedule.specs), schedule.seed)
            if schedule is not None
            else (None, None)
        )
        self._fault_state = state
        for w in self._workers:
            try:
                self._call(w, ("faults",) + state)
            except FaultInjectedError:
                pass  # the respawn re-armed them from _fault_state

    # -- the two read paths ----------------------------------------------
    def route(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Execute a whole request in one worker (round-robin).

        A dead worker yields a well-formed retryable ``internal`` error
        (the executor's quarantine contract) — never an exception — and
        the worker is respawned behind the caller's back.
        """
        with self._rr_lock:
            w = self._workers[self._rr % len(self._workers)]
            self._rr += 1
        if self._registry is not None:
            self._registry.inc(
                "ppkws_shard_requests_total", labels={"kind": "execute"}
            )
        try:
            status = self._call(w, ("execute", request))
        except FaultInjectedError as exc:
            return {
                "v": 1,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "code": "internal",
                "retryable": True,
            }
        if status[0] == "ok":
            response: Dict[str, Any] = status[1]
            return response
        return {
            "v": 1,
            "status": "error",
            "error": f"{status[1]}: {status[2]}",
            "code": "internal",
            "retryable": False,
        }

    def replicated(self, name: str) -> bool:
        """Whether ``name`` has been shipped to the workers."""
        return name in self._partitions

    def plan(self, network: str, owner: str) -> "_PoolShardPlan":
        """A scatter-gather plan for one query on ``network``."""
        partition = self._partitions.get(network)
        if partition is None:
            raise ReproError(f"network {network!r} is not replicated")
        return _PoolShardPlan(self, partition, network, owner)

    def _take_ticket(self, initial_bound: float) -> int:
        with self._ticket_lock:
            ticket = self._next_ticket % _MAX_TICKETS
            self._next_ticket += 1
        self._bounds[ticket] = initial_bound
        return ticket

    def scatter(
        self,
        network: str,
        owner: str,
        kind: str,
        tasks: List[ShardTask],
        initial_bound: float,
        on_result: Callable[[Any], float],
    ) -> None:
        """Fan tasks out, merge in shard order, push tightened bounds.

        Sends to every involved worker first (locks taken in ascending
        shard order — deadlock-free against concurrent routes), then
        receives in the same order; after each merge the new bound is
        written to the shared slot so still-running shards prune against
        it.  A worker death surfaces as
        :class:`~repro.exceptions.FaultInjectedError` (wire code
        ``internal``) after the respawn.
        """
        if not tasks:
            return
        ticket = self._take_ticket(initial_bound)
        started = time.perf_counter()
        dispatched: List[Tuple[_Worker, Dict[str, Any]]] = []
        cancelled = 0
        acquired: List[_Worker] = []
        try:
            for shard, payload, cost_floor in sorted(tasks, key=lambda t: t[0]):
                if cost_floor > self._bounds[ticket]:
                    cancelled += 1
                    continue
                w = self._workers[shard % len(self._workers)]
                w.lock.acquire()
                acquired.append(w)
                try:
                    w.conn.send(
                        ("task", kind, network, owner, payload, ticket)
                    )
                except (EOFError, OSError, BrokenPipeError):
                    self._respawn_locked(w)
                    raise FaultInjectedError(
                        SHARD_WORKER.name,
                        f"shard worker {w.shard_id} died mid-scatter "
                        "(respawned from the admin log)",
                    ) from None
                dispatched.append((w, payload))
            for w, _payload in dispatched:
                try:
                    status = w.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    self._respawn_locked(w)
                    raise FaultInjectedError(
                        SHARD_WORKER.name,
                        f"shard worker {w.shard_id} died mid-task "
                        "(respawned from the admin log)",
                    ) from None
                if status[0] != "ok":
                    raise FaultInjectedError(SHARD_WORKER.name, status[2])
                self._bounds[ticket] = min(
                    self._bounds[ticket], on_result(status[1])
                )
        finally:
            for w in acquired:
                w.lock.release()
            if self._registry is not None:
                self._registry.inc(
                    "ppkws_shard_requests_total",
                    amount=float(len(dispatched)),
                    labels={"kind": kind},
                )
                if cancelled:
                    self._registry.inc(
                        "ppkws_shard_cancelled_total", amount=float(cancelled)
                    )
                self._registry.observe(
                    "ppkws_shard_merge_seconds",
                    time.perf_counter() - started,
                )

    # -- introspection ---------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """A JSON-friendly pool snapshot for the ``health`` op."""
        alive = sum(
            1
            for w in self._workers
            if w.process is not None and w.process.is_alive()
        )
        return {
            "mode": "process",
            "shards": len(self._workers),
            "alive": alive,
            "respawns": self._respawns,
            "shutdown": self._shutdown,
            "networks": {
                name: {
                    "shard_sizes": part.sizes(),
                    "frontier_edges": part.frontier,
                }
                for name, part in sorted(self._partitions.items())
            },
        }


class _PoolShardPlan:
    """The per-query view a ``sharded_run`` step drives (pool-backed)."""

    __slots__ = ("_pool", "partition", "_network", "_owner")

    def __init__(
        self,
        pool: ShardServingPool,
        partition: ShardPartition,
        network: str,
        owner: str,
    ) -> None:
        self._pool = pool
        self.partition = partition
        self._network = network
        self._owner = owner

    @property
    def num_shards(self) -> int:
        return self.partition.num_shards

    def shard_of(self, vertex: Any) -> int:
        return self.partition.shard_of(vertex)

    def scatter(
        self,
        kind: str,
        tasks: List[ShardTask],
        initial_bound: float,
        on_result: Callable[[Any], float],
    ) -> None:
        self._pool.scatter(
            self._network, self._owner, kind, tasks, initial_bound, on_result
        )
