"""A bounded worker pool executing service requests concurrently.

:class:`ServiceExecutor` is the serving layer's concurrency engine: a
fixed set of worker threads pulls request dicts off a FIFO queue and
runs them through ``service.execute``.  Combined with the service's
per-network reader-writer locks, read-only queries on different
networks — and different owners of one network — genuinely overlap,
while the facade's admission control, budgets and error contract apply
unchanged (workers call the same ``execute`` everyone else does, and
``execute`` never raises library errors).

Two entry points::

    with ServiceExecutor(service, workers=4) as pool:
        future = pool.submit({"op": "knk", ...})       # -> Future
        responses = pool.execute_many(batch_of_dicts)  # ordered list

Self-healing
------------
A worker thread that *dies* — anything escaping the worker loop, e.g.
an injected :class:`~repro.exceptions.WorkerKilledError` at the
``serving.executor.worker`` fault point — no longer strands the queue:
the same thread re-enters its loop immediately (a logical respawn,
counted in ``ppkws_worker_respawns_total`` and :meth:`health`), and the
request it was holding is *quarantined*: its future resolves to a
well-formed ``status: "error"`` / ``code: "internal"`` response rather
than hanging forever or poisoning the next request.  If the death
happens while the executor is shutting down the future instead fails
with :class:`~repro.exceptions.ExecutorShutdownError`.  Either way the
drain guarantee stands: every future returned by :meth:`submit`
resolves.

Observability (recorded into the service's effective metrics registry,
see :func:`repro.obs.hooks.observe_executor_request`):

``ppkws_executor_queue_depth``
    Gauge: requests submitted but not yet finished.
``ppkws_executor_wait_seconds``
    Histogram: time a request spent queued before a worker picked it up.
``ppkws_worker_request_seconds{worker}``
    Per-worker latency histogram.
``ppkws_executor_completed_total{worker}``
    Per-worker completion counter.
``ppkws_worker_respawns_total``
    Counter: worker deaths recovered by respawn.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence

from repro import faults
from repro.exceptions import ExecutorShutdownError
from repro.faults.points import EXECUTOR_WORKER
from repro.obs.hooks import observe_executor_queue, observe_executor_request
from repro.obs.registry import MetricsRegistry, installed

__all__ = ["ServiceExecutor"]

#: queue sentinel telling a worker to exit
_STOP = object()


class _Item:
    """One queued request with its recovery bookkeeping.

    ``accounted`` flips once the normal path has decremented the
    pending gauge, so crash recovery never double-decrements.
    """

    __slots__ = ("request", "future", "submitted", "accounted")

    def __init__(
        self,
        request: Dict[str, Any],
        future: "Future[Dict[str, Any]]",
        submitted: float,
    ) -> None:
        self.request = request
        self.future = future
        self.submitted = submitted
        self.accounted = False


class ServiceExecutor:
    """Run requests against a service on a bounded pool of workers.

    ``service`` is anything with an ``execute(dict) -> dict`` method —
    normally a :class:`~repro.service.PPKWSService`.  ``workers`` fixes
    the pool size.  ``queue_size`` bounds the backlog: ``0`` (default)
    means unbounded, a positive value makes :meth:`submit` block once
    that many requests are waiting (backpressure for producers that
    outrun the pool; the service's own ``max_in_flight`` admission
    control still applies per request).

    ``registry`` overrides where executor metrics go; by default the
    service's effective registry (constructor-injected or process-wide
    installed) is used.

    ``mode`` selects the execution tier.  ``"thread"`` (default) is the
    classic pool: CPU-bound queries share one GIL, so it only overlaps
    I/O and lock waits.  ``"process"`` additionally calls
    ``service.enable_sharding(workers)``: the worker threads become I/O
    pumps (a pipe ``recv`` releases the GIL) while the queries execute
    in shard worker *processes* against shared-memory graph replicas —
    see :mod:`repro.serving.shards`.  The executor owns the pool it
    started and disables sharding again on :meth:`shutdown`.

    If the service exposes ``bind_executor``, the executor registers
    itself so the service's ``health`` op can report worker liveness.
    """

    def __init__(
        self,
        service: Any,
        workers: int = 4,
        queue_size: int = 0,
        registry: Optional[MetricsRegistry] = None,
        mode: str = "thread",
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if mode not in ("thread", "process"):
            raise ValueError(f"bad executor mode {mode!r}")
        self._service = service
        self._registry = registry
        self.mode = mode
        self._owns_shard_pool = False
        if mode == "process":
            enable = getattr(service, "enable_sharding", None)
            if not callable(enable):
                raise ValueError(
                    "mode='process' needs a service with enable_sharding()"
                )
            if getattr(service, "shard_pool", None) is None:
                enable(workers)
                self._owns_shard_pool = True
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._shutdown = False
        self._shutdown_lock = threading.Lock()
        #: submitted but not yet completed (the queue-depth gauge source)
        self._pending = 0
        self._pending_lock = threading.Lock()
        #: worker id -> the item it is executing right now
        self._current: Dict[int, _Item] = {}
        self._current_lock = threading.Lock()
        self._respawns = 0
        self._workers = [
            threading.Thread(
                target=self._worker_main,
                args=(i,),
                name=f"ppkws-exec-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for t in self._workers:
            t.start()
        bind = getattr(service, "bind_executor", None)
        if callable(bind):
            bind(self)

    @property
    def workers(self) -> int:
        """The fixed pool size."""
        return len(self._workers)

    # ------------------------------------------------------------------
    def _registry_for(self) -> Optional[MetricsRegistry]:
        if self._registry is not None:
            return self._registry
        getter = getattr(self._service, "_metrics_registry", None)
        if getter is not None:
            return getter()
        return installed()

    def _adjust_pending(self, delta: int) -> None:
        with self._pending_lock:
            self._pending += delta
            depth = self._pending
        observe_executor_queue(self._registry_for(), depth)

    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, Any]) -> "Future[Dict[str, Any]]":
        """Enqueue one request; resolves to its response dict.

        The future only carries an exception if the service itself
        breaks its "never raises" contract, the executor is broken, or
        a worker dies during shutdown while holding the request
        (:class:`~repro.exceptions.ExecutorShutdownError`); normal
        failures — including a worker death outside shutdown, surfaced
        as ``code: "internal"`` — are ``status: "error"`` *results*.
        Raises :class:`~repro.exceptions.ExecutorShutdownError` (a
        ``RuntimeError`` subclass) after :meth:`shutdown`.
        """
        with self._shutdown_lock:
            if self._shutdown:
                raise ExecutorShutdownError()
            future: "Future[Dict[str, Any]]" = Future()
            self._adjust_pending(+1)
        self._queue.put(_Item(request, future, time.perf_counter()))
        return future

    def execute_many(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Run a whole workload; responses in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def _worker_main(self, worker_id: int) -> None:
        """Thread body: run the loop forever, respawning after a death."""
        while True:
            try:
                self._worker_loop(worker_id)
                return
            except BaseException as exc:  # worker death: recover + respawn
                self._recover_worker(worker_id, exc)
                # Always re-enter the loop — even mid-shutdown the
                # worker must keep draining until it eats its _STOP,
                # or queued futures would never resolve.

    def _worker_loop(self, worker_id: int) -> None:
        label = str(worker_id)
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if not item.future.set_running_or_notify_cancel():
                self._adjust_pending(-1)
                continue
            with self._current_lock:
                self._current[worker_id] = item
            # An exception anywhere between here and the pop below is a
            # worker death: it escapes to _worker_main with the item
            # still registered in _current, so _recover_worker can
            # resolve its future.  The injected kill fires outside the
            # response try for exactly that reason.
            faults.fire(EXECUTOR_WORKER)
            started = time.perf_counter()
            try:
                response = self._service.execute(item.request)
            except BaseException as exc:  # pragma: no cover - contract break
                item.future.set_exception(exc)
            else:
                item.future.set_result(response)
            finally:
                done = time.perf_counter()
                self._adjust_pending(-1)
                item.accounted = True
                observe_executor_request(
                    self._registry_for(),
                    worker=label,
                    wait_s=started - item.submitted,
                    run_s=done - started,
                )
            with self._current_lock:
                self._current.pop(worker_id, None)

    def _recover_worker(self, worker_id: int, exc: BaseException) -> None:
        """Resolve whatever a dead worker was holding; count the respawn."""
        with self._current_lock:
            item = self._current.pop(worker_id, None)
            self._respawns += 1
        if item is not None:
            if not item.accounted:
                self._adjust_pending(-1)
                item.accounted = True
            if not item.future.done():
                with self._shutdown_lock:
                    shutting_down = self._shutdown
                if shutting_down:
                    item.future.set_exception(ExecutorShutdownError(
                        "worker died while the executor was shutting down; "
                        f"request abandoned ({type(exc).__name__}: {exc})"
                    ))
                else:
                    # Quarantine: a well-formed v1 error response, so the
                    # caller sees an ordinary internal failure rather than
                    # a hung future.  The protocol version is the literal
                    # 1 — importing repro.service here would be a cycle;
                    # tests pin it against service.PROTOCOL_VERSION.
                    item.future.set_result({
                        "v": 1,
                        "status": "error",
                        "error": (
                            "worker died while executing this request: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        "code": "internal",
                        "retryable": False,
                    })
        registry = self._registry_for()
        if registry is not None:
            registry.inc("ppkws_worker_respawns_total")

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """A JSON-friendly liveness snapshot (used by the ``health`` op)."""
        with self._current_lock:
            busy = len(self._current)
            respawns = self._respawns
        with self._pending_lock:
            pending = self._pending
        with self._shutdown_lock:
            shutdown = self._shutdown
        return {
            "mode": self.mode,
            "workers": len(self._workers),
            "alive": sum(1 for t in self._workers if t.is_alive()),
            "busy": busy,
            "pending": pending,
            "respawns": respawns,
            "shutdown": shutdown,
        }

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers.

        Already-queued requests are drained before the workers exit —
        every future returned by :meth:`submit` resolves.  Idempotent.
        """
        with self._shutdown_lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._workers:
            self._queue.put(_STOP)
        if wait:
            for t in self._workers:
                t.join()
        if self._owns_shard_pool:
            # Started by our mode="process" constructor, ours to stop.
            self._service.disable_sharding()
            self._owns_shard_pool = False

    def __enter__(self) -> "ServiceExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown(wait=True)
