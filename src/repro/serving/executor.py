"""A bounded worker pool executing service requests concurrently.

:class:`ServiceExecutor` is the serving layer's concurrency engine: a
fixed set of worker threads pulls request dicts off a FIFO queue and
runs them through ``service.execute``.  Combined with the service's
per-network reader-writer locks, read-only queries on different
networks — and different owners of one network — genuinely overlap,
while the facade's admission control, budgets and error contract apply
unchanged (workers call the same ``execute`` everyone else does, and
``execute`` never raises library errors).

Two entry points::

    with ServiceExecutor(service, workers=4) as pool:
        future = pool.submit({"op": "knk", ...})       # -> Future
        responses = pool.execute_many(batch_of_dicts)  # ordered list

Observability (recorded into the service's effective metrics registry,
see :func:`repro.obs.hooks.observe_executor_request`):

``ppkws_executor_queue_depth``
    Gauge: requests submitted but not yet finished.
``ppkws_executor_wait_seconds``
    Histogram: time a request spent queued before a worker picked it up.
``ppkws_worker_request_seconds{worker}``
    Per-worker latency histogram.
``ppkws_executor_completed_total{worker}``
    Per-worker completion counter.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ExecutorShutdownError
from repro.obs.hooks import observe_executor_queue, observe_executor_request
from repro.obs.registry import MetricsRegistry, installed

__all__ = ["ServiceExecutor"]

#: queue sentinel telling a worker to exit
_STOP = object()


class ServiceExecutor:
    """Run requests against a service on a bounded pool of workers.

    ``service`` is anything with an ``execute(dict) -> dict`` method —
    normally a :class:`~repro.service.PPKWSService`.  ``workers`` fixes
    the pool size.  ``queue_size`` bounds the backlog: ``0`` (default)
    means unbounded, a positive value makes :meth:`submit` block once
    that many requests are waiting (backpressure for producers that
    outrun the pool; the service's own ``max_in_flight`` admission
    control still applies per request).

    ``registry`` overrides where executor metrics go; by default the
    service's effective registry (constructor-injected or process-wide
    installed) is used.
    """

    def __init__(
        self,
        service: Any,
        workers: int = 4,
        queue_size: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._service = service
        self._registry = registry
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._shutdown = False
        self._shutdown_lock = threading.Lock()
        #: submitted but not yet completed (the queue-depth gauge source)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"ppkws-exec-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for t in self._workers:
            t.start()

    @property
    def workers(self) -> int:
        """The fixed pool size."""
        return len(self._workers)

    # ------------------------------------------------------------------
    def _registry_for(self) -> Optional[MetricsRegistry]:
        if self._registry is not None:
            return self._registry
        getter = getattr(self._service, "_metrics_registry", None)
        if getter is not None:
            return getter()
        return installed()

    def _adjust_pending(self, delta: int) -> None:
        with self._pending_lock:
            self._pending += delta
            depth = self._pending
        observe_executor_queue(self._registry_for(), depth)

    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, Any]) -> "Future[Dict[str, Any]]":
        """Enqueue one request; resolves to its response dict.

        The future only carries an exception if the service itself
        breaks its "never raises" contract (or the executor is broken);
        normal failures are ``status: "error"`` *results*.  Raises
        :class:`~repro.exceptions.ExecutorShutdownError` (a
        ``RuntimeError`` subclass) after :meth:`shutdown`.
        """
        with self._shutdown_lock:
            if self._shutdown:
                raise ExecutorShutdownError()
            future: "Future[Dict[str, Any]]" = Future()
            self._adjust_pending(+1)
        self._queue.put((request, future, time.perf_counter()))
        return future

    def execute_many(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Run a whole workload; responses in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: int) -> None:
        label = str(worker_id)
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request, future, submitted = item
            if not future.set_running_or_notify_cancel():
                self._adjust_pending(-1)
                continue
            started = time.perf_counter()
            try:
                response = self._service.execute(request)
            except BaseException as exc:  # pragma: no cover - contract break
                future.set_exception(exc)
            else:
                future.set_result(response)
            finally:
                done = time.perf_counter()
                self._adjust_pending(-1)
                observe_executor_request(
                    self._registry_for(),
                    worker=label,
                    wait_s=started - submitted,
                    run_s=done - started,
                )

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers.

        Already-queued requests are drained before the workers exit —
        every future returned by :meth:`submit` resolves.  Idempotent.
        """
        with self._shutdown_lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._workers:
            self._queue.put(_STOP)
        if wait:
            for t in self._workers:
                t.join()

    def __enter__(self) -> "ServiceExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown(wait=True)
