"""Cross-request answer cache: LRU + TTL + epoch-based invalidation.

The paper amortizes work *within* a query (PKA memoization) and the
batch layer amortizes portal lookups *within* one owner's session
(:class:`~repro.core.batch.PersistentCompletionCache`).  This module
generalizes the idea one level up: completed ``status: "ok"`` responses
are cached at the serving layer keyed on
``(network, owner, op, canonicalized params)``, so a repeated query is
answered without touching the engine at all.

Staleness is handled by *epochs*, not by enumerating affected keys: the
service keeps a monotonically increasing epoch per network name and
bumps it on every ``attach`` / ``detach`` / ``drop`` / ``create``.  An
entry remembers the epoch it was computed under; a lookup presents the
network's *current* epoch and any entry with a different epoch is
treated as a miss and purged.  Because the epoch survives ``drop`` (the
map is keyed by name and never shrinks), re-creating a network under an
old name can never revive answers from its previous life.

Entries additionally carry a TTL (wall-clock freshness bound for
operators who mutate state outside the facade) and the table is
bounded LRU.  Stored values are deep-copied on both insert and hit so
neither the service nor its callers can mutate a cached answer in
place.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro import faults
from repro.faults.points import CACHE_LOOKUP, CACHE_STORE

__all__ = ["AnswerCache"]


class AnswerCache:
    """Bounded, TTL'd, epoch-validated response cache.  Thread-safe.

    ``max_entries`` bounds the table (LRU eviction).  ``ttl_s`` is the
    per-entry freshness bound in seconds; ``None`` disables expiry.
    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl_s: Optional[float] = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        #: key -> (epoch, stored_at, value)
        self._table: "OrderedDict[Hashable, Tuple[int, float, Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        #: lookups dropped because the network epoch moved on
        self.stale_hits = 0

    # ------------------------------------------------------------------
    def lookup(self, key: Hashable, epoch: int) -> Optional[Any]:
        """The cached value for ``key`` at ``epoch``, or ``None``.

        A present entry whose epoch differs from ``epoch`` (the network
        changed since it was stored) or whose TTL has lapsed is purged
        and counts as a miss.  Hits return a deep copy and refresh the
        entry's LRU position.

        The deep copy happens *outside* the lock: stored values are
        deep-copied on insert and never mutated in place, so copying a
        reference after release is safe — and a large response no longer
        serializes every concurrent hit behind one copy.
        """
        faults.fire(CACHE_LOOKUP)
        with self._lock:
            entry = self._table.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_epoch, stored_at, value = entry
            if stored_epoch != epoch:
                del self._table[key]
                self.stale_hits += 1
                self.misses += 1
                return None
            if self.ttl_s is not None and self._clock() - stored_at > self.ttl_s:
                del self._table[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._table.move_to_end(key)
            self.hits += 1
        return copy.deepcopy(value)

    def store(self, key: Hashable, epoch: int, value: Any) -> None:
        """Insert (a deep copy of) ``value`` computed under ``epoch``."""
        faults.fire(CACHE_STORE)
        snapshot = copy.deepcopy(value)
        with self._lock:
            if key in self._table:
                self._table.move_to_end(key)
            self._table[key] = (epoch, self._clock(), snapshot)
            while len(self._table) > self.max_entries:
                self._table.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._table.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._table)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since construction (0.0 before any lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """A JSON-friendly counter snapshot (for the ``metrics`` op)."""
        with self._lock:
            return {
                "entries": len(self._table),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "stale_hits": self.stale_hits,
            }
