"""A writer-preferring reader-writer lock for the serving layer.

The service facade serves two very different request classes: read-only
queries (Blinks / r-clique / BANKS / k-nk / stats), which never mutate a
network and may run in parallel, and admin operations (attach / detach /
drop), which restructure per-network state and must be exclusive.  A
plain mutex would serialize the read side; :class:`RWLock` lets any
number of readers proceed together while writers get exclusivity.

Semantics:

* Any number of readers may hold the lock concurrently.
* A writer holds the lock alone (no readers, no other writers).
* Writers are *preferred*: once a writer is waiting, new readers queue
  behind it.  Under sustained query traffic an attach would otherwise
  starve forever.
* The lock is **not reentrant** on either side; a thread acquiring the
  read side while holding the write side (or vice versa) deadlocks.
  The service takes it exactly once per request, around the handler.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from repro import faults
from repro.faults.points import RWLOCK_ACQUIRE_READ, RWLOCK_ACQUIRE_WRITE

__all__ = ["RWLock"]


class RWLock:
    """Shared/exclusive lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- read side ------------------------------------------------------
    def acquire_read(self) -> None:
        """Block until no writer is active or waiting, then enter shared."""
        # The fault point fires *before* the lock is touched, so an
        # injected raise or delay can never leak a partially-held lock.
        faults.fire(RWLOCK_ACQUIRE_READ)
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side -----------------------------------------------------
    def acquire_write(self) -> None:
        """Block until the lock is free, then enter exclusive."""
        # Before the lock for the same leak-freedom reason as acquire_read.
        faults.fire(RWLOCK_ACQUIRE_WRITE)
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers ----------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked():`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked():`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection (tests / metrics) --------------------------------
    @property
    def readers(self) -> int:
        """Readers currently inside the lock (racy; diagnostics only)."""
        return self._readers

    @property
    def write_active(self) -> bool:
        """Whether a writer currently holds the lock (racy; diagnostics)."""
        return self._writer_active
