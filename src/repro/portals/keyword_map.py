"""Portal-keyword and vertex-portal distance maps (paper Sec. V-C).

Two small private-graph-side indexes complete the picture:

* **PKD** (portal-keyword distance map): for each portal ``p`` and each
  keyword ``t`` in the private graph's alphabet, the nearest private
  vertex carrying ``t`` and its distance ``d'(p, v)``.
* **Vertex-portal map**: ``d'(v, p)`` for every private vertex ``v`` and
  portal ``p`` — the entry/exit costs of paths that detour through the
  public graph (Eq. 4/5).

Both are built with one Dijkstra per portal over the (small) private
graph, so construction is ``O(|P| * |G'| log |G'|)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.traversal import INF, dijkstra

__all__ = [
    "PortalKeywordEntry",
    "PortalKeywordDistanceMap",
    "VertexPortalDistanceMap",
    "build_private_maps",
]


@dataclass(frozen=True)
class PortalKeywordEntry:
    """``PKD(p, t)``: the nearest private vertex with ``t`` and its distance."""

    vertex: Vertex
    distance: float


class PortalKeywordDistanceMap:
    """``(portal, keyword) -> PortalKeywordEntry`` over the private graph."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Vertex, Label], PortalKeywordEntry] = {}

    def record(self, portal: Vertex, keyword: Label, vertex: Vertex, d: float) -> None:
        """Keep the closest witness for ``(portal, keyword)``."""
        key = (portal, keyword)
        cur = self._entries.get(key)
        if cur is None or d < cur.distance:
            self._entries[key] = PortalKeywordEntry(vertex, d)

    def get(self, portal: Vertex, keyword: Label) -> Optional[PortalKeywordEntry]:
        """Lookup ``PKD(p, t)``; ``None`` when the keyword is unreachable."""
        return self._entries.get((portal, keyword))

    def distance(self, portal: Vertex, keyword: Label) -> float:
        """Distance-only lookup (``inf`` when absent)."""
        entry = self._entries.get((portal, keyword))
        return entry.distance if entry is not None else INF

    def __len__(self) -> int:
        return len(self._entries)


class VertexPortalDistanceMap:
    """``d'(v, p)`` for private vertices ``v`` and portals ``p``."""

    __slots__ = ("_by_vertex", "portals")

    def __init__(self, portals: Iterable[Vertex]) -> None:
        self.portals: FrozenSet[Vertex] = frozenset(portals)
        self._by_vertex: Dict[Vertex, Dict[Vertex, float]] = {}

    def record(self, v: Vertex, portal: Vertex, d: float) -> None:
        """Store ``d'(v, portal)``."""
        self._by_vertex.setdefault(v, {})[portal] = d

    def get(self, v: Vertex, portal: Vertex) -> float:
        """``d'(v, portal)`` (``inf`` when unreachable)."""
        return self._by_vertex.get(v, {}).get(portal, INF)

    def portal_distances(self, v: Vertex) -> Mapping[Vertex, float]:
        """All portal distances of ``v`` — the inner loop of Eq. 4/5."""
        return self._by_vertex.get(v, {})

    def __len__(self) -> int:
        return sum(len(m) for m in self._by_vertex.values())


def build_private_maps(
    private: LabeledGraph,
    portals: Iterable[Vertex],
) -> Tuple[PortalKeywordDistanceMap, VertexPortalDistanceMap]:
    """Build PKD and the vertex-portal map with one Dijkstra per portal."""
    # repr order: per-vertex portal-distance dicts keep a deterministic
    # iteration order, so downstream min()-style tie-breaks are stable.
    portal_list = sorted((p for p in portals if p in private), key=repr)
    pkd = PortalKeywordDistanceMap()
    vpm = VertexPortalDistanceMap(portal_list)
    for p in portal_list:
        dist = dijkstra(private, p)
        for v, d in dist.items():
            vpm.record(v, p, d)
            for t in private.labels(v):
                pkd.record(p, t, v, d)
    return pkd, vpm
