"""Portal-node indexes: distance maps, keyword maps, combined oracles."""

from repro.portals.distance_map import (
    PortalDistanceMap,
    all_pairs_portal_distances,
    refine_portal_distances,
)
from repro.portals.keyword_map import (
    PortalKeywordDistanceMap,
    PortalKeywordEntry,
    VertexPortalDistanceMap,
    build_private_maps,
)
from repro.portals.oracle import (
    CombinedDistanceOracle,
    ExactPublicDistance,
    SketchPublicDistance,
)

__all__ = [
    "CombinedDistanceOracle",
    "ExactPublicDistance",
    "PortalDistanceMap",
    "PortalKeywordDistanceMap",
    "PortalKeywordEntry",
    "SketchPublicDistance",
    "VertexPortalDistanceMap",
    "all_pairs_portal_distances",
    "build_private_maps",
    "refine_portal_distances",
]
