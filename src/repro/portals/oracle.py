"""Distance oracles over the (never materialized) combined graph.

Two layers:

* **Public-distance providers** answer vertex-vertex and vertex-keyword
  distance queries *within the public graph*.  The production provider is
  sketch-based (PADS + KPADS, Eq. 2/3, ``O(k ln |V|)`` per query); an
  exact Dijkstra-backed provider with the same interface exists for
  testing and for measuring sketch accuracy.

* :class:`CombinedDistanceOracle` combines a private graph's local maps
  (vertex-portal, PKD) with the refined portal map ``dc`` and a public
  provider to evaluate the paper's Eq. 4 (vertex-vertex refinement) and
  Eq. 5 (vertex-keyword refinement) without ever touching ``Gc``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.graph.labeled_graph import Label, LabeledGraph, Vertex
from repro.graph.protocol import GraphLike
from repro.graph.traversal import INF, dijkstra, dijkstra_ordered
from repro.portals.distance_map import PortalDistanceMap
from repro.portals.keyword_map import (
    PortalKeywordDistanceMap,
    VertexPortalDistanceMap,
)
from repro.sketches.base import DistanceSketch
from repro.sketches.kpads import KeywordSketch

__all__ = [
    "SketchPublicDistance",
    "ExactPublicDistance",
    "CombinedDistanceOracle",
]


class SketchPublicDistance:
    """Public-graph distances estimated from PADS/KPADS (the fast path)."""

    __slots__ = ("pads", "kpads")

    def __init__(self, pads: DistanceSketch, kpads: KeywordSketch) -> None:
        self.pads = pads
        self.kpads = kpads

    def vertex_distance(self, u: Vertex, v: Vertex) -> float:
        """``d_hat(u, v)`` on the public graph (Eq. 2)."""
        return self.pads.estimate(u, v)

    def keyword_distance(self, v: Vertex, keyword: Label) -> float:
        """``d_hat(v, t)`` on the public graph (Eq. 3)."""
        return self.kpads.estimate(self.pads, v, keyword)

    def keyword_distance_with_witness(
        self, v: Vertex, keyword: Label
    ) -> Tuple[float, Optional[Vertex]]:
        """``d_hat(v, t)`` plus the matched public vertex."""
        return self.kpads.estimate_with_witness(self.pads, v, keyword)


class ExactPublicDistance:
    """Exact Dijkstra-backed provider (testing / accuracy baselines).

    Caches one full distance map per queried source, which is fine for
    the small graphs used in tests but deliberately *not* what PPKWS
    does in production — the whole point of PADS is avoiding this.
    """

    __slots__ = ("graph", "_cache")

    def __init__(self, graph: "GraphLike") -> None:
        self.graph = graph
        self._cache: Dict[Vertex, Dict[Vertex, float]] = {}

    def _distances_from(self, source: Vertex) -> Dict[Vertex, float]:
        if source not in self._cache:
            self._cache[source] = dijkstra(self.graph, source)
        return self._cache[source]

    def vertex_distance(self, u: Vertex, v: Vertex) -> float:
        """Exact ``d(u, v)`` on the public graph."""
        if u not in self.graph or v not in self.graph:
            return INF
        return self._distances_from(u).get(v, INF)

    def keyword_distance(self, v: Vertex, keyword: Label) -> float:
        """Exact ``d(v, t)`` on the public graph."""
        return self.keyword_distance_with_witness(v, keyword)[0]

    def keyword_distance_with_witness(
        self, v: Vertex, keyword: Label
    ) -> Tuple[float, Optional[Vertex]]:
        """Exact nearest public vertex carrying ``keyword``."""
        if v not in self.graph or not self.graph.vertices_with_label(keyword):
            return INF, None
        for u, d in dijkstra_ordered(self.graph, v):
            if self.graph.has_label(u, keyword):
                return d, u
        return INF, None


class CombinedDistanceOracle:
    """Eq. 4 / Eq. 5 evaluation: combined-graph distances through portals.

    The oracle never builds ``Gc``.  For private vertices it knows the
    vertex-portal distances and the refined portal map; for the public
    side it delegates to a public-distance provider.
    """

    __slots__ = ("private", "portal_map", "vertex_portal", "pkd", "public")

    def __init__(
        self,
        private: LabeledGraph,
        portal_map: PortalDistanceMap,
        vertex_portal: VertexPortalDistanceMap,
        pkd: PortalKeywordDistanceMap,
        public: SketchPublicDistance,
    ) -> None:
        self.private = private
        self.portal_map = portal_map
        self.vertex_portal = vertex_portal
        self.pkd = pkd
        self.public = public

    # ------------------------------------------------------------------
    def refine_pair(
        self,
        v1: Vertex,
        v2: Vertex,
        upper: float,
        pairs_by_source: Optional[Mapping[Vertex, Tuple[Vertex, ...]]] = None,
    ) -> float:
        """Eq. 4: tighten a private-graph distance with portal detours.

        ``upper`` is the current bound (typically ``d'(v1, v2)``); the
        result is the minimum of ``upper`` and every two-portal detour
        ``d'(v1, p_i) + dc(p_i, p_j) + d'(p_j, v2)``.

        ``pairs_by_source`` restricts the detour middles to the given
        portal pairs (first portal -> allowed second portals) — the
        Sec.-VI-A reduced refinement passes the *refined* pairs, which is
        lossless: a detour through an unrefined pair is itself a
        private-graph path, so it cannot beat ``d'(v1, v2)``.
        """
        best = upper
        from_v1 = self.vertex_portal.portal_distances(v1)
        to_v2 = self.vertex_portal.portal_distances(v2)
        if not from_v1 or not to_v2:
            return best
        pmap = self.portal_map
        for pi, d1 in from_v1.items():
            if d1 >= best:
                continue
            if pairs_by_source is not None:
                for pj in pairs_by_source.get(pi, ()):
                    d2 = to_v2.get(pj)
                    if d2 is None:
                        continue
                    total = d1 + pmap.get(pi, pj) + d2
                    if total < best:
                        best = total
            else:
                for pj, d2 in to_v2.items():
                    total = d1 + pmap.get(pi, pj) + d2
                    if total < best:
                        best = total
        return best

    def refine_vertex_keyword(
        self,
        v: Vertex,
        keyword: Label,
        upper: float,
        pairs_by_source: Optional[Mapping[Vertex, Tuple[Vertex, ...]]] = None,
    ) -> float:
        """Eq. 5: tighten a private vertex-to-keyword distance via PKD.

        ``pairs_by_source`` restricts detours as in :meth:`refine_pair`.
        """
        return self.refine_vertex_keyword_with_witness(
            v, keyword, upper, pairs_by_source
        )[0]

    def refine_vertex_keyword_with_witness(
        self,
        v: Vertex,
        keyword: Label,
        upper: float,
        pairs_by_source: Optional[Mapping[Vertex, Tuple[Vertex, ...]]] = None,
    ) -> Tuple[float, Optional[Vertex]]:
        """Eq. 5 plus the keyword vertex realizing the refined distance.

        The witness is ``None`` when ``upper`` was not improved (the
        caller's existing match vertex remains correct).
        """
        best = upper
        witness: Optional[Vertex] = None
        from_v = self.vertex_portal.portal_distances(v)
        if not from_v:
            return best, witness
        pmap = self.portal_map
        pkd = self.pkd
        # PKD tails depend only on the middle portal: fetch each once.
        tails: Dict[Vertex, Tuple[float, Vertex]] = {}
        for pi, d1 in from_v.items():
            if d1 >= best:
                continue
            middles = (
                pairs_by_source.get(pi, ())
                if pairs_by_source is not None
                else pmap.portals
            )
            for pj in middles:
                cached = tails.get(pj)
                if cached is None:
                    entry = pkd.get(pj, keyword)
                    if entry is None:
                        tails[pj] = (INF, pj)
                        continue
                    cached = (entry.distance, entry.vertex)
                    tails[pj] = cached
                tail, tail_witness = cached
                if tail is INF:
                    continue
                total = d1 + pmap.get(pi, pj) + tail
                if total < best:
                    best = total
                    witness = tail_witness
        return best, witness

    # ------------------------------------------------------------------
    def private_to_public_vertex(self, v: Vertex, u: Vertex) -> float:
        """Distance from private vertex ``v`` to public vertex ``u``.

        Paths must exit through some portal: ``min over p of
        d'(v, p) + d_public(p, u)``.
        """
        best = INF
        for p, d1 in self.vertex_portal.portal_distances(v).items():
            d2 = self.public.vertex_distance(p, u)
            if d1 + d2 < best:
                best = d1 + d2
        return best

    def private_to_public_keyword(
        self, v: Vertex, keyword: Label
    ) -> Tuple[float, Optional[Vertex]]:
        """Nearest *public* vertex carrying ``keyword`` from private ``v``.

        The AComplete building block: exit through the best portal and
        finish with a KPADS lookup.  Returns ``(distance, witness)``.
        """
        best = INF
        witness: Optional[Vertex] = None
        for p, d1 in self.vertex_portal.portal_distances(v).items():
            d2, w = self.public.keyword_distance_with_witness(p, keyword)
            if d1 + d2 < best:
                best = d1 + d2
                witness = w
        return best, witness
