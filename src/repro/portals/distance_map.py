"""Portal distance maps and their combined-graph refinement (Sec. V-C).

Portals are the only places where shortest paths can cross between the
public and private graphs, and there are few of them, so PPKWS
precomputes:

* ``d(p_i, p_j)``  — all-pairs portal distances on the public graph ``G``,
* ``d'(p_i, p_j)`` — all-pairs portal distances on the private graph ``G'``,

and then *refines* them into the combined-graph portal distances
``dc(p_i, p_j)`` with the fixpoint of the paper's Algo 7: start from the
pointwise minimum of the two maps and repeatedly relax triangles through
other portals until nothing improves.  The result equals the true
all-pairs shortest distances between portals on ``Gc`` (we test this
against Dijkstra on the materialized combined graph).

The refinement also records *which portal pairs actually improved* over
the private-graph distances — the bookkeeping behind the reduced-answer-
refinement optimization (Sec. VI-A, Lemma VI.1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.graph.labeled_graph import Vertex
from repro.graph.protocol import GraphLike
from repro.graph.traversal import INF, dijkstra

__all__ = [
    "PortalDistanceMap",
    "all_pairs_portal_distances",
    "refine_portal_distances",
]


class PortalDistanceMap:
    """Symmetric map of shortest distances between portal nodes.

    Missing pairs are treated as unreachable (``inf``).  Storage is a
    symmetric dict-of-dicts — every pair is stored in both orientations —
    because :meth:`get` sits on the answer-refinement hot path and must
    be a plain double dict lookup (portals may be incomparable objects,
    so there is no cheap canonical ordering).  The map is tiny anyway:
    ``O(|P|^2)`` with ``|P| << |V|``.
    """

    __slots__ = ("portals", "_adj")

    def __init__(self, portals: Iterable[Vertex]) -> None:
        self.portals: FrozenSet[Vertex] = frozenset(portals)
        self._adj: Dict[Vertex, Dict[Vertex, float]] = {}

    def get(self, p: Vertex, q: Vertex) -> float:
        """Distance between two portals (``0`` on the diagonal)."""
        if p == q:
            return 0.0
        row = self._adj.get(p)
        if row is None:
            return INF
        return row.get(q, INF)

    def set(self, p: Vertex, q: Vertex, d: float) -> None:
        """Record ``d(p, q)``; the diagonal is implicit and immutable."""
        if p != q:
            self._adj.setdefault(p, {})[q] = d
            self._adj.setdefault(q, {})[p] = d

    def improve(self, p: Vertex, q: Vertex, d: float) -> bool:
        """Lower ``d(p, q)`` to ``d`` if smaller; report whether it changed."""
        if p == q or d >= self.get(p, q):
            return False
        self.set(p, q, d)
        return True

    def pairs(self) -> Iterable[Tuple[Vertex, Vertex, float]]:
        """Iterate each stored unordered pair once as ``(p, q, distance)``."""
        seen: set = set()
        for p, row in self._adj.items():
            for q, d in row.items():
                if q not in seen:
                    yield p, q, d
            seen.add(p)

    def copy(self) -> "PortalDistanceMap":
        """An independent copy (refinement mutates in place)."""
        out = PortalDistanceMap(self.portals)
        out._adj = {p: dict(row) for p, row in self._adj.items()}
        return out

    def __len__(self) -> int:
        return sum(len(row) for row in self._adj.values()) // 2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PortalDistanceMap |P|={len(self.portals)} pairs={len(self)}>"


def all_pairs_portal_distances(
    graph: "GraphLike", portals: Iterable[Vertex]
) -> PortalDistanceMap:
    """All-pairs shortest distances between ``portals`` within ``graph``.

    Runs one Dijkstra per portal, early-terminated once the other portals
    are settled.  Portals absent from ``graph`` simply stay unreachable —
    this happens for private-only analysis of portals of another owner.
    """
    portal_list = sorted(portals, key=repr)
    pmap = PortalDistanceMap(portal_list)
    present = [p for p in portal_list if p in graph]
    target_set = set(present)
    for p in present:
        dist = dijkstra(graph, p, targets=set(target_set))
        for q in present:
            if q != p:
                d = dist.get(q, INF)
                if d < INF:
                    pmap.improve(p, q, d)
    return pmap


def refine_portal_distances(
    public_map: PortalDistanceMap,
    private_map: PortalDistanceMap,
) -> Tuple[PortalDistanceMap, Set[Tuple[Vertex, Vertex]]]:
    """Combine portal maps into the combined-graph map ``dc`` (Algo 7).

    Returns ``(dc, refined_pairs)`` where ``refined_pairs`` contains the
    portal pairs (in *both* orientations, for direct iteration) whose
    combined distance became strictly smaller than the private-graph
    distance — exactly the pairs that can make answer refinement
    worthwhile (Lemma VI.1): a detour through an unrefined pair is a
    private-graph path and can never beat a private shortest distance.
    """
    portals = public_map.portals | private_map.portals
    combined = PortalDistanceMap(portals)
    counter = itertools.count()  # tie-break: portals may be incomparable
    queue: List[Tuple[float, int, Vertex, Vertex]] = []

    # Initialization: pointwise minimum of the two maps (Algo 7 lines 2-5).
    for p, q in itertools.combinations(sorted(portals, key=repr), 2):
        d = min(public_map.get(p, q), private_map.get(p, q))
        if d < INF:
            combined.set(p, q, d)
            heapq.heappush(queue, (d, next(counter), p, q))

    # Fixpoint relaxation through intermediate portals (lines 6-14).
    portal_list = list(portals)
    while queue:
        dist, _, p1, p2 = heapq.heappop(queue)
        if dist > combined.get(p1, p2):
            continue  # stale queue entry
        for pi in portal_list:
            if pi == p1 or pi == p2:
                continue
            via_p1 = combined.get(pi, p1)
            if via_p1 + dist < combined.get(pi, p2):
                combined.set(pi, p2, via_p1 + dist)
                heapq.heappush(queue, (via_p1 + dist, next(counter), pi, p2))
            via_p2 = combined.get(pi, p2)
            if via_p2 + dist < combined.get(pi, p1):
                combined.set(pi, p1, via_p2 + dist)
                heapq.heappush(queue, (via_p2 + dist, next(counter), pi, p1))

    refined: Set[Tuple[Vertex, Vertex]] = set()
    for p, q, d in combined.pairs():
        if d < private_map.get(p, q):
            refined.add((p, q))
            refined.add((q, p))
    return combined, refined
