"""Paper-style table and series rendering for the benchmark harness.

All output is plain monospaced text: the benchmark files print it and
also persist it under ``bench_results/`` so the figures' rows/series can
be inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.bench.harness import QueryTiming, speedups
from repro.bench.plotting import ascii_breakdown_bars, ascii_grouped_bars

__all__ = [
    "render_table",
    "render_query_comparison",
    "render_breakdown",
    "render_series",
    "write_report",
]


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def render_query_comparison(
    title: str, timings: Sequence[QueryTiming], include_m1: bool = False
) -> str:
    """The Fig.-6 (a-c / g-i / m-o) view: PP vs baseline per query in ms."""
    headers = ["query", "PPKWS(ms)", "Baseline(ms)", "speedup", "ans(pp/base)"]
    if include_m1:
        headers.insert(3, "M1(ms)")
    rows: List[List[object]] = []
    for t in timings:
        row: List[object] = [
            t.label,
            t.pp_seconds * 1000,
            t.baseline_seconds * 1000,
        ]
        if include_m1:
            row.append((t.m1_seconds or 0.0) * 1000)
        row.append(f"{t.speedup:.1f}x")
        row.append(f"{t.pp_answers}/{t.baseline_answers}")
        rows.append(row)
    stats = speedups(timings)
    footer = (
        f"speedup: mean {stats['mean']:.1f}x, min {stats['min']:.1f}x, "
        f"max {stats['max']:.1f}x, total-time ratio {stats['total']:.1f}x\n"
    )
    chart = ascii_grouped_bars(
        "per-query times (log scale)",
        [t.label for t in timings],
        [
            ("PPKWS", [t.pp_seconds * 1000 for t in timings]),
            ("Baseln", [t.baseline_seconds * 1000 for t in timings]),
        ],
    )
    return render_table(title, headers, rows) + footer + chart


def render_breakdown(title: str, timings: Sequence[QueryTiming]) -> str:
    """The Fig.-6 (d-f / j-l / p-r) view: per-step time per query."""
    headers = ["query", "PEval(ms)", "ARefine(ms)", "AComplete(ms)", "shares"]
    rows: List[List[object]] = []
    for t in timings:
        b = t.breakdown
        pe, ar, ac = b.fractions()
        rows.append(
            [
                t.label,
                b.peval * 1000,
                b.arefine * 1000,
                b.acomplete * 1000,
                f"{pe:.0%}/{ar:.0%}/{ac:.0%}",
            ]
        )
    total = sum((t.breakdown.total for t in timings), 0.0)
    if total > 0:
        pe = sum(t.breakdown.peval for t in timings) / total
        ar = sum(t.breakdown.arefine for t in timings) / total
        ac = sum(t.breakdown.acomplete for t in timings) / total
        footer = f"overall shares: PEval {pe:.1%}, ARefine {ar:.1%}, AComplete {ac:.1%}\n"
    else:
        footer = ""
    chart = ascii_breakdown_bars(
        "per-query step shares",
        [t.label for t in timings],
        [
            (t.breakdown.peval, t.breakdown.arefine, t.breakdown.acomplete)
            for t in timings
        ],
    )
    return render_table(title, headers, rows) + footer + chart


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Sequence[Sequence[float]],
    names: Sequence[str],
) -> str:
    """A Fig.-5-style multi-series table: one row per x, one col per series."""
    headers = [x_label, *names]
    rows = [[x, *(s[i] for s in series)] for i, x in enumerate(xs)]
    return render_table(title, headers, rows)


def write_report(name: str, content: str, directory: Optional[str] = None) -> str:
    """Persist a rendered report under ``bench_results/`` and return its path."""
    out_dir = directory or os.environ.get(
        "REPRO_BENCH_DIR", os.path.join(os.getcwd(), "bench_results")
    )
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return path
