"""Paper-style table and series rendering for the benchmark harness.

Human output is plain monospaced text: the benchmark files print it and
also persist it under ``bench_results/`` so the figures' rows/series can
be inspected after a ``pytest benchmarks/ --benchmark-only`` run.

Each figure additionally persists a machine-readable twin —
``bench_results/<name>.json`` next to ``<name>.txt`` — via
:func:`write_json_report`, so plots and regression dashboards consume
the same numbers the text tables show without re-parsing ASCII.
:func:`timings_payload` is the canonical JSON shape for a
:class:`~repro.bench.harness.QueryTiming` sequence.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.harness import QueryTiming, speedups
from repro.bench.plotting import ascii_breakdown_bars, ascii_grouped_bars

__all__ = [
    "render_table",
    "render_query_comparison",
    "render_breakdown",
    "render_series",
    "timings_payload",
    "write_report",
    "write_json_report",
]


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table with a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def render_query_comparison(
    title: str, timings: Sequence[QueryTiming], include_m1: bool = False
) -> str:
    """The Fig.-6 (a-c / g-i / m-o) view: PP vs baseline per query in ms."""
    headers = ["query", "PPKWS(ms)", "Baseline(ms)", "speedup", "ans(pp/base)"]
    if include_m1:
        headers.insert(3, "M1(ms)")
    rows: List[List[object]] = []
    for t in timings:
        row: List[object] = [
            t.label,
            t.pp_seconds * 1000,
            t.baseline_seconds * 1000,
        ]
        if include_m1:
            row.append((t.m1_seconds or 0.0) * 1000)
        row.append(f"{t.speedup:.1f}x")
        row.append(f"{t.pp_answers}/{t.baseline_answers}")
        rows.append(row)
    stats = speedups(timings)
    footer = (
        f"speedup: mean {stats['mean']:.1f}x, min {stats['min']:.1f}x, "
        f"max {stats['max']:.1f}x, total-time ratio {stats['total']:.1f}x\n"
    )
    chart = ascii_grouped_bars(
        "per-query times (log scale)",
        [t.label for t in timings],
        [
            ("PPKWS", [t.pp_seconds * 1000 for t in timings]),
            ("Baseln", [t.baseline_seconds * 1000 for t in timings]),
        ],
    )
    return render_table(title, headers, rows) + footer + chart


def render_breakdown(title: str, timings: Sequence[QueryTiming]) -> str:
    """The Fig.-6 (d-f / j-l / p-r) view: per-step time per query."""
    headers = ["query", "PEval(ms)", "ARefine(ms)", "AComplete(ms)", "shares"]
    rows: List[List[object]] = []
    for t in timings:
        b = t.breakdown
        pe, ar, ac = b.fractions()
        rows.append(
            [
                t.label,
                b.peval * 1000,
                b.arefine * 1000,
                b.acomplete * 1000,
                f"{pe:.0%}/{ar:.0%}/{ac:.0%}",
            ]
        )
    total = sum((t.breakdown.total for t in timings), 0.0)
    if total > 0:
        pe = sum(t.breakdown.peval for t in timings) / total
        ar = sum(t.breakdown.arefine for t in timings) / total
        ac = sum(t.breakdown.acomplete for t in timings) / total
        footer = f"overall shares: PEval {pe:.1%}, ARefine {ar:.1%}, AComplete {ac:.1%}\n"
    else:
        footer = ""
    chart = ascii_breakdown_bars(
        "per-query step shares",
        [t.label for t in timings],
        [
            (t.breakdown.peval, t.breakdown.arefine, t.breakdown.acomplete)
            for t in timings
        ],
    )
    return render_table(title, headers, rows) + footer + chart


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Sequence[Sequence[float]],
    names: Sequence[str],
) -> str:
    """A Fig.-5-style multi-series table: one row per x, one col per series."""
    headers = [x_label, *names]
    rows = [[x, *(s[i] for s in series)] for i, x in enumerate(xs)]
    return render_table(title, headers, rows)


def timings_payload(timings: Sequence[QueryTiming]) -> Dict[str, Any]:
    """The machine-readable twin of the comparison + breakdown tables.

    One entry per query (times in milliseconds, ``m1_ms`` only when the
    experiment measured M1) plus the aggregate ``speedups`` block the
    text footer prints.
    """
    queries: List[Dict[str, Any]] = []
    for t in timings:
        entry: Dict[str, Any] = {
            "query": t.label,
            "pp_ms": t.pp_seconds * 1000,
            "baseline_ms": t.baseline_seconds * 1000,
            "speedup": t.speedup,
            "pp_answers": t.pp_answers,
            "baseline_answers": t.baseline_answers,
            "breakdown_ms": {
                "peval": t.breakdown.peval * 1000,
                "arefine": t.breakdown.arefine * 1000,
                "acomplete": t.breakdown.acomplete * 1000,
            },
        }
        if t.m1_seconds is not None:
            entry["m1_ms"] = t.m1_seconds * 1000
        queries.append(entry)
    return {"queries": queries, "speedups": speedups(timings)}


def _bench_dir(directory: Optional[str]) -> str:
    out_dir = directory or os.environ.get(
        "REPRO_BENCH_DIR", os.path.join(os.getcwd(), "bench_results")
    )
    os.makedirs(out_dir, exist_ok=True)
    return out_dir


def write_report(name: str, content: str, directory: Optional[str] = None) -> str:
    """Persist a rendered report under ``bench_results/`` and return its path."""
    path = os.path.join(_bench_dir(directory), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return path


def write_json_report(
    name: str, payload: Dict[str, Any], directory: Optional[str] = None
) -> str:
    """Persist ``payload`` as ``bench_results/<name>.json``; returns the path.

    ``Infinity`` is legal in Python's JSON writer but not in strict
    parsers, so infinite speedups (a 0ms PPKWS run) are serialized as
    ``null``.
    """

    def _finite(obj: Any) -> Any:
        if isinstance(obj, float) and (obj != obj or obj in (float("inf"), float("-inf"))):
            return None
        if isinstance(obj, dict):
            return {k: _finite(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [_finite(v) for v in obj]
        return obj

    path = os.path.join(_bench_dir(directory), f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(_finite(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
