"""Experiment registry: bench-scale datasets and shared engine state.

The paper's datasets have millions of vertices; the bench scale here is
chosen so that a full ``pytest benchmarks/ --benchmark-only`` run
finishes in minutes on a laptop while staying in the locality regime the
paper's results depend on (see DESIGN.md §4).  ``scale="small"`` is used
by the unit/integration tests that exercise the harness itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.framework import PPKWS, QueryOptions
from repro.datasets.synthetic import (
    PublicPrivateDataset,
    dbpedia_like,
    ppdblp_like,
    yago_like,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.public_private import combine

__all__ = ["ExperimentSetup", "DATASET_SCALES", "build_setup", "dataset_names"]

#: Per-scale dataset builder parameters.
DATASET_SCALES: Dict[str, Dict[str, Callable[[], PublicPrivateDataset]]] = {
    "small": {
        "yago": lambda: yago_like(
            num_vertices=800, num_labels=120, private_vertices=60, seed=31
        ),
        "dbpedia": lambda: dbpedia_like(
            num_vertices=800, num_labels=120, private_vertices=60, seed=32
        ),
        "ppdblp": lambda: ppdblp_like(
            num_communities=20, community_size=30, num_labels=150,
            private_vertices=50, seed=33,
        ),
    },
    "bench": {
        "yago": lambda: yago_like(
            num_vertices=6000, num_labels=300, private_vertices=100, seed=41
        ),
        "dbpedia": lambda: dbpedia_like(
            num_vertices=6000, num_labels=300, private_vertices=120, seed=42
        ),
        "ppdblp": lambda: ppdblp_like(
            num_communities=100, community_size=40, num_labels=400,
            private_vertices=80, seed=43,
        ),
    },
}


@dataclass
class ExperimentSetup:
    """Everything one experiment needs, built once and shared."""

    name: str
    dataset: PublicPrivateDataset
    engine: PPKWS
    owner: str
    combined: LabeledGraph

    @property
    def private(self) -> LabeledGraph:
        """The owner's private graph."""
        return self.dataset.private(self.owner)


def dataset_names() -> List[str]:
    """The three dataset families, in the paper's order."""
    return ["yago", "dbpedia", "ppdblp"]


def build_setup(
    name: str,
    scale: str = "bench",
    sketch_k: int = 2,
    options: Optional[QueryOptions] = None,
) -> ExperimentSetup:
    """Build dataset + engine + attachment + combined graph for ``name``."""
    builders = DATASET_SCALES[scale]
    dataset = builders[name]()
    engine = PPKWS(dataset.public, sketch_k=sketch_k, options=options)
    owner = dataset.owners()[0]
    engine.attach(owner, dataset.private(owner))
    gc = combine(dataset.public, dataset.private(owner))
    return ExperimentSetup(name, dataset, engine, owner, gc)
