"""ASCII chart rendering for benchmark reports.

The paper's Fig. 5/6/7 are log-scale grouped bar charts; these helpers
render the same data as monospaced text so a terminal-only benchmark run
still *shows* the figures, not just their numbers.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_bars", "ascii_grouped_bars", "ascii_breakdown_bars"]

_FULL = "#"


def _bar(length: int) -> str:
    return _FULL * max(0, length)


def _scale(value: float, vmin: float, vmax: float, width: int, log: bool) -> int:
    if value <= 0 or vmax <= 0:
        return 0
    if log:
        lo = math.log10(max(vmin, 1e-12))
        hi = math.log10(vmax)
        if hi <= lo:
            return width
        frac = (math.log10(value) - lo) / (hi - lo)
    else:
        frac = value / vmax
    return max(1, round(frac * width))


def ascii_bars(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    log: bool = False,
    unit: str = "",
) -> str:
    """One horizontal bar per (label, value); optionally log-scaled."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [title, "-" * len(title)]
    if not values:
        return "\n".join(lines) + "\n"
    vmax = max(values)
    vmin = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1.0
    label_w = max(len(s) for s in labels)
    for label, value in zip(labels, values):
        bar = _bar(_scale(value, vmin, vmax, width, log))
        lines.append(f"{label.ljust(label_w)} |{bar} {value:g}{unit}")
    if log:
        lines.append(f"(log scale, max {vmax:g}{unit})")
    return "\n".join(lines) + "\n"


def ascii_grouped_bars(
    title: str,
    group_labels: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 40,
    log: bool = True,
    unit: str = "ms",
) -> str:
    """Grouped bars (the paper's PP-vs-baseline per-query figures).

    ``series`` is ``[(name, values), ...]`` with one value per group.
    """
    lines = [title, "-" * len(title)]
    all_values = [v for _, vs in series for v in vs if v > 0]
    if not all_values:
        return "\n".join(lines) + "\n"
    vmax = max(all_values)
    vmin = min(all_values)
    name_w = max(len(name) for name, _ in series)
    label_w = max(len(s) for s in group_labels)
    for gi, glabel in enumerate(group_labels):
        for name, values in series:
            bar = _bar(_scale(values[gi], vmin, vmax, width, log))
            lines.append(
                f"{glabel.ljust(label_w)} {name.ljust(name_w)} "
                f"|{bar} {values[gi]:.2f}{unit}"
            )
        lines.append("")
    if log:
        lines.append(f"(log scale, max {vmax:.2f}{unit})")
    return "\n".join(lines) + "\n"


def ascii_breakdown_bars(
    title: str,
    labels: Sequence[str],
    parts: Sequence[Tuple[float, float, float]],
    width: int = 40,
    part_names: Optional[Sequence[str]] = None,
) -> str:
    """Stacked 100%-bars for the PEval/ARefine/AComplete breakdown."""
    names = list(part_names or ("PEval", "ARefine", "AComplete"))
    chars = ["P", "R", "C"]
    lines = [title, "-" * len(title)]
    legend = ", ".join(f"{c}={n}" for c, n in zip(chars, names))
    lines.append(f"legend: {legend}")
    label_w = max((len(s) for s in labels), default=0)
    for label, triple in zip(labels, parts):
        total = sum(triple)
        if total <= 0:
            lines.append(f"{label.ljust(label_w)} |")
            continue
        segments: List[str] = []
        used = 0
        for i, value in enumerate(triple):
            seg = round(width * value / total)
            if i == len(triple) - 1:
                seg = width - used
            used += seg
            segments.append(chars[i] * max(0, seg))
        lines.append(f"{label.ljust(label_w)} |{''.join(segments)}|")
    return "\n".join(lines) + "\n"
