"""Benchmark harness: timing loops, paper-style reports, experiment registry."""

from repro.bench.experiments import (
    DATASET_SCALES,
    ExperimentSetup,
    build_setup,
    dataset_names,
)
from repro.bench.harness import (
    QueryTiming,
    run_keyword_experiment,
    run_knk_experiment,
    select_representative,
    speedups,
)
from repro.bench.plotting import (
    ascii_bars,
    ascii_breakdown_bars,
    ascii_grouped_bars,
)
from repro.bench.reporting import (
    render_breakdown,
    render_query_comparison,
    render_series,
    render_table,
    timings_payload,
    write_json_report,
    write_report,
)

__all__ = [
    "DATASET_SCALES",
    "ExperimentSetup",
    "QueryTiming",
    "ascii_bars",
    "ascii_breakdown_bars",
    "ascii_grouped_bars",
    "build_setup",
    "dataset_names",
    "render_breakdown",
    "render_query_comparison",
    "render_series",
    "render_table",
    "run_keyword_experiment",
    "run_knk_experiment",
    "select_representative",
    "speedups",
    "timings_payload",
    "write_json_report",
    "write_report",
]
