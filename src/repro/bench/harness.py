"""Timing harness for the paper's experiments (Sec. VII).

The experiment loop of the paper runs a set of random queries per
(dataset, semantic), measures the PPKWS implementation against the
baseline on the materialized combined graph, and reports per-query bars
(Fig. 6) plus a per-step breakdown of the PPKWS time.  This module
provides that loop; :mod:`repro.bench.reporting` renders the results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.framework import PPKWS, StepBreakdown, query_model_m1, query_model_m2
from repro.datasets.queries import KeywordQuery, KnkQuery
from repro.graph.labeled_graph import LabeledGraph
from repro.semantics.knk import knk_search

__all__ = ["QueryTiming", "run_keyword_experiment", "run_knk_experiment",
           "select_representative", "speedups"]


@dataclass
class QueryTiming:
    """One query's measurements: PPKWS vs baseline, plus the breakdown."""

    label: str
    pp_seconds: float
    baseline_seconds: float
    breakdown: StepBreakdown
    pp_answers: int
    baseline_answers: int
    m1_seconds: Optional[float] = None

    @property
    def speedup(self) -> float:
        """Baseline time over PPKWS time (>1 means PPKWS wins)."""
        if self.pp_seconds == 0:
            return float("inf")
        return self.baseline_seconds / self.pp_seconds


def run_keyword_experiment(
    engine: PPKWS,
    owner: str,
    semantic: str,
    queries: Sequence[KeywordQuery],
    combined: LabeledGraph,
    k: int = 10,
    include_m1: bool = False,
) -> List[QueryTiming]:
    """Run Blinks or r-clique queries through PPKWS (M3) and M2 baseline.

    The combined graph is materialized by the caller so the ⊕ cost stays
    out of both measured regions (conservative for PPKWS: the baseline
    would otherwise also pay it per user).
    """
    attachment = engine.attachment(owner)
    private = attachment.private
    results: List[QueryTiming] = []
    for i, query in enumerate(queries, start=1):
        keywords = list(query.keywords)
        if semantic == "blinks":
            start = time.perf_counter()
            pp = engine.blinks(owner, keywords, query.tau, k=k)
            pp_seconds = time.perf_counter() - start
        elif semantic == "rclique":
            start = time.perf_counter()
            pp = engine.rclique(owner, keywords, query.tau, k=k)
            pp_seconds = time.perf_counter() - start
        else:
            raise ValueError(f"unknown semantic {semantic!r}")

        start = time.perf_counter()
        base = query_model_m2(
            engine.public, private, semantic, keywords, query.tau, k,
            combined=combined,
        )
        baseline_seconds = time.perf_counter() - start

        m1_seconds: Optional[float] = None
        if include_m1:
            start = time.perf_counter()
            query_model_m1(engine.public, private, semantic, keywords, query.tau, k)
            m1_seconds = time.perf_counter() - start

        results.append(
            QueryTiming(
                label=f"Q{i}",
                pp_seconds=pp_seconds,
                baseline_seconds=baseline_seconds,
                breakdown=pp.breakdown,
                pp_answers=len(pp.answers),
                baseline_answers=len(base),
                m1_seconds=m1_seconds,
            )
        )
    return results


def run_knk_experiment(
    engine: PPKWS,
    owner: str,
    queries: Sequence[KnkQuery],
    combined: LabeledGraph,
) -> List[QueryTiming]:
    """Run k-nk queries through PP-knk and the Baseline-knk on ``Gc``."""
    results: List[QueryTiming] = []
    for i, query in enumerate(queries, start=1):
        start = time.perf_counter()
        pp = engine.knk(owner, query.source, query.keyword, query.k)
        pp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        base = knk_search(combined, query.source, query.keyword, query.k)
        baseline_seconds = time.perf_counter() - start

        results.append(
            QueryTiming(
                label=f"Q{i}",
                pp_seconds=pp_seconds,
                baseline_seconds=baseline_seconds,
                breakdown=pp.breakdown,
                pp_answers=len(pp.answer.matches),
                baseline_answers=len(base.matches),
            )
        )
    return results


def select_representative(
    timings: Sequence[QueryTiming], n: int = 10
) -> List[QueryTiming]:
    """The paper's reporting rule: 3 good, 3 bad and 4 medium cases.

    "Good" means the largest PPKWS speedups.  If fewer than ``n`` timings
    exist they are all returned (in original order).
    """
    if len(timings) <= n:
        return list(timings)
    ranked = sorted(timings, key=lambda t: t.speedup, reverse=True)
    good = ranked[:3]
    bad = ranked[-3:]
    middle = ranked[3:-3]
    mid_start = max(0, (len(middle) - (n - 6)) // 2)
    medium = middle[mid_start:mid_start + (n - 6)]
    chosen = good + medium + bad
    for i, t in enumerate(chosen, start=1):
        t.label = f"Q{i}"
    return chosen


def speedups(timings: Sequence[QueryTiming]) -> dict:
    """Aggregate speedup statistics over a query set."""
    if not timings:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "total": 0.0}
    ratios = [t.speedup for t in timings]
    total_pp = sum(t.pp_seconds for t in timings)
    total_base = sum(t.baseline_seconds for t in timings)
    return {
        "mean": sum(ratios) / len(ratios),
        "min": min(ratios),
        "max": max(ratios),
        "total": (total_base / total_pp) if total_pp else float("inf"),
    }
