"""Answer validation against exact evaluation on a materialized graph.

PPKWS reports sketch-estimated distances; these helpers check any answer
against exact Dijkstra on a given graph (typically the combined graph),
returning a structured report instead of a bare boolean so callers and
tests can see *why* an answer is invalid.

Checks performed per semantic:

* matched vertices genuinely carry their keywords;
* every reported distance is **achievable** (>= the true shortest
  distance — sketch estimates are upper bounds, so a reported distance
  below the true one indicates a bug);
* distances respect the semantic's bound ``tau`` (Blinks / r-clique);
* the answer is public-private when required (Def. II.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.qualify import answer_sides
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.traversal import INF, dijkstra
from repro.semantics.answers import KnkAnswer, RootedAnswer

__all__ = ["ValidationReport", "validate_rooted_answer", "validate_knk_answer"]

_EPS = 1e-9


@dataclass
class ValidationReport:
    """Outcome of validating one answer."""

    valid: bool
    problems: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid

    @classmethod
    def ok(cls) -> "ValidationReport":
        return cls(True, [])

    def fail(self, problem: str) -> None:
        """Record a problem (marks the report invalid)."""
        self.valid = False
        self.problems.append(problem)


def validate_rooted_answer(
    graph: LabeledGraph,
    answer: RootedAnswer,
    tau: float,
    public: Optional[LabeledGraph] = None,
    private: Optional[LabeledGraph] = None,
) -> ValidationReport:
    """Validate a Blinks / r-clique answer against ``graph`` (usually Gc).

    Pass ``public`` and ``private`` to additionally enforce the
    public-private qualification of Def. II.2.
    """
    report = ValidationReport.ok()
    if answer.root not in graph:
        report.fail(f"root {answer.root!r} not in the graph")
        return report
    exact = dijkstra(graph, answer.root)
    for q, m in answer.matches.items():
        if m.vertex is None:
            report.fail(f"keyword {q!r} has no matched vertex")
            continue
        if m.vertex not in graph:
            report.fail(f"match {m.vertex!r} for {q!r} not in the graph")
            continue
        if not graph.has_label(m.vertex, q):
            report.fail(f"match {m.vertex!r} does not carry keyword {q!r}")
        true = exact.get(m.vertex, INF)
        if m.distance < true - _EPS:
            report.fail(
                f"reported d(root, {m.vertex!r}) = {m.distance:g} below the "
                f"true distance {true:g} (unachievable)"
            )
        if m.distance > tau + _EPS:
            report.fail(
                f"match {m.vertex!r} at distance {m.distance:g} exceeds "
                f"tau = {tau:g}"
            )
    if public is not None and private is not None:
        touches_private, touches_public = answer_sides(
            (m.vertex for m in answer.matches.values()), public, private
        )
        if not (touches_private and touches_public):
            report.fail("answer is not public-private (Def. II.2)")
    return report


def validate_knk_answer(
    graph: LabeledGraph,
    answer: KnkAnswer,
    conjunctive_keywords: Optional[List[str]] = None,
) -> ValidationReport:
    """Validate a k-nk (or multi-keyword k-nk) answer against ``graph``.

    For plain k-nk the answer's ``keyword`` must appear on every match;
    for multi-keyword answers pass ``conjunctive_keywords`` to check all
    of them (disjunctive answers should pass the keywords one at a time
    and accept any).
    """
    report = ValidationReport.ok()
    if answer.source not in graph:
        report.fail(f"source {answer.source!r} not in the graph")
        return report
    exact = dijkstra(graph, answer.source)
    previous = 0.0
    for m in answer.matches:
        if m.vertex is None or m.vertex not in graph:
            report.fail(f"match {m.vertex!r} not in the graph")
            continue
        if conjunctive_keywords is not None:
            missing = [
                q for q in conjunctive_keywords
                if not graph.has_label(m.vertex, q)
            ]
            if missing:
                report.fail(f"match {m.vertex!r} misses keywords {missing}")
        elif "|" not in answer.keyword and "&" not in answer.keyword:
            if not graph.has_label(m.vertex, answer.keyword):
                report.fail(
                    f"match {m.vertex!r} does not carry {answer.keyword!r}"
                )
        true = exact.get(m.vertex, INF)
        if m.distance < true - _EPS:
            report.fail(
                f"reported d(source, {m.vertex!r}) = {m.distance:g} below "
                f"the true distance {true:g}"
            )
        if m.distance < previous - _EPS:
            report.fail("matches are not sorted by distance")
        previous = m.distance
    return report
