"""RA006 — monotonic-time discipline.

``time.time()`` jumps with NTP slews and DST/leap adjustments, so
durations, deadlines and rate computations measured with it can go
negative or silently stretch.  Library and benchmark code must measure
with ``time.monotonic()`` / ``time.perf_counter()`` or accept an
injected ``clock`` callable (as :class:`~repro.core.budget.QueryBudget`
does).  Genuine wall-clock *timestamps* (log lines, report metadata) are
rare; justify them with ``# ra: ignore[RA006]`` on the call line.

The rule flags ``time.time()`` calls and ``from time import time``
(which hides the tainted name behind an innocent one).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["MonotonicClockRule"]


class MonotonicClockRule(Rule):
    id = "RA006"
    title = "time.time() is banned for durations"
    rationale = (
        "Wall clocks are not monotonic; deadlines and latency metrics "
        "computed from them misfire under clock adjustments."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module == "repro" or ctx.module.startswith("repro."):
            return True
        return ctx.module.startswith(("benchmarks", "scripts", "examples"))

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "time.time() call (use time.monotonic() / "
                            "time.perf_counter() or an injected clock)",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and any(
                    alias.name == "time" for alias in node.names
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "`from time import time` (import monotonic/"
                            "perf_counter instead; wall clock is banned "
                            "for durations)",
                        )
                    )
        return findings
