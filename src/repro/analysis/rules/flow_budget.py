"""RA011: budget-taint — the deadline must follow the traversal.

The syntactic RA004 rule checks that a function *containing* an
expanding loop consults its budget; it cannot see a caller that holds a
:class:`QueryBudget` and hands work to an expanding helper *without
threading the budget through* — the helper then runs unbounded while
the caller believes the deadline is enforced.

RA011 closes that hole interprocedurally: if a function takes a
``budget`` parameter and calls a project function that (a) also accepts
``budget`` and (b) transitively performs a vertex-expanding traversal
(the shared RA004 heuristic: ``heappop`` / ``neighbor_items`` /
``neighbors`` inside a loop), the call must forward a budget-carrying
argument — positionally (any name/attribute containing ``budget``), by
keyword, or via ``**kwargs``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.flow import ProjectFlow

__all__ = ["BudgetTaintRule"]


class BudgetTaintRule(Rule):
    id = "RA011"
    title = "budget-carrying callers must thread the budget to expanding callees"
    rationale = (
        "An expanding traversal reached from a budget-carrying entry "
        "point without the budget is an unbounded query hiding behind a "
        "bounded signature."
    )
    needs_flow = True

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> List[Finding]:
        flow = ctx.flow
        if flow is None:
            return []
        findings = flow.rule_cache.get(self.id)
        if findings is None:
            findings = self._compute(flow)
            flow.rule_cache[self.id] = findings
        return [f for f in findings if f.path == ctx.path]

    def _compute(self, flow: ProjectFlow) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for key in sorted(flow.functions):
            fn = flow.functions[key]
            if not fn.has_budget_param:
                continue
            for call in fn.calls:
                if call.passes_budget:
                    continue
                for callee in flow.resolve(fn, call):
                    if callee.key == fn.key:
                        continue
                    if not callee.has_budget_param:
                        continue
                    if not flow.expands(callee.key):
                        continue
                    dedup = (call.site.path, call.site.line, callee.qualname)
                    if dedup in seen:
                        continue
                    seen.add(dedup)
                    findings.append(
                        Finding(
                            path=call.site.path,
                            line=call.site.line,
                            col=call.site.col,
                            rule=self.id,
                            message=(
                                f"{fn.qualname} holds a budget but calls "
                                f"expanding {callee.qualname} without "
                                "threading it (pass budget=...)"
                            ),
                        )
                    )
                    break
        return findings
