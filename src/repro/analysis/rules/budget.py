"""RA004 — budget discipline in the expansion loops.

PR 1 threaded :class:`~repro.core.budget.QueryBudget` through every
vertex-expanding loop so a single adversarial query cannot pin a worker.
That invariant decays silently: a new loop that forgets to checkpoint
reintroduces unbounded latency without failing any functional test.

Within the budgeted modules (``repro.graph.traversal``,
``repro.semantics.*`` and ``repro.core.pp_*``), any function taking a
``budget`` parameter must reference ``budget`` inside each outermost
*expanding* loop — a loop whose body pops a heap
(``heappop`` / ``heappushpop``) or walks adjacency
(``neighbor_items`` / ``neighbors``).  Passing the budget down to a
callee inside the loop counts: the callee checkpoints on our behalf.

Everywhere under ``repro``, the rule also flags handlers that *swallow*
a budget exception (``except BudgetError: pass``): graceful degradation
must record what was interrupted, never discard the signal.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import (
    call_name,
    handler_type_names,
    is_trivial_body,
)

__all__ = ["BudgetDisciplineRule"]

_EXPANSION_CALLS = frozenset(
    {"heappop", "heappushpop", "neighbor_items", "neighbors"}
)

_BUDGET_EXCEPTIONS = frozenset(
    {
        "BudgetError",
        "BudgetExhaustedError",
        "DeadlineExceededError",
        "QueryCancelledError",
    }
)

_LOOP_MODULE_PREFIXES = ("repro.semantics.", "repro.core.pp_")
_LOOP_MODULES = ("repro.graph.traversal",)


def _in_loop_scope(module: str) -> bool:
    return module in _LOOP_MODULES or module.startswith(_LOOP_MODULE_PREFIXES)


def _is_expanding(loop: ast.AST) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name in _EXPANSION_CALLS:
                return True
    return False


def _mentions_budget(loop: ast.AST) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and node.id == "budget":
            return True
        if isinstance(node, ast.keyword) and node.arg == "budget":
            return True
    return False


class BudgetDisciplineRule(Rule):
    id = "RA004"
    title = "expanding loops must honour an in-scope budget"
    rationale = (
        "A budget parameter that a loop ignores reintroduces unbounded "
        "query latency; a swallowed BudgetError hides the degradation."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        if ctx.force or _in_loop_scope(ctx.module):
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if self._takes_budget(node):
                        self._check_function(ctx, node, findings)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                caught = handler_type_names(node) & _BUDGET_EXCEPTIONS
                if caught and is_trivial_body(node.body):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"`except {sorted(caught)[0]}` swallows the "
                            f"budget signal (record degradation or re-raise)",
                        )
                    )
        return findings

    @staticmethod
    def _takes_budget(func: ast.FunctionDef) -> bool:
        args = func.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        return any(a.arg == "budget" for a in every)

    def _check_function(
        self,
        ctx: FileContext,
        func: ast.FunctionDef,
        findings: List[Finding],
    ) -> None:
        """Flag outermost expanding loops that never mention ``budget``."""

        def scan(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.While, ast.For, ast.AsyncFor)):
                    if _is_expanding(child):
                        if not _mentions_budget(child):
                            findings.append(
                                self.finding(
                                    ctx,
                                    child,
                                    "vertex-expanding loop ignores the "
                                    "in-scope `budget` (call "
                                    "budget.checkpoint()/expired() or pass "
                                    "budget to the callee)",
                                )
                            )
                        continue  # one finding per outermost expanding loop
                    scan(child)
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue  # nested defs have their own parameter scope
                else:
                    scan(child)

        scan(func)
