"""RA012: purity drift — vectorized kernels stay bit-identical.

The batch/vectorized execution mode is contractually bit-identical to
the pure per-query path (the ``batch-matrix`` CI job pins this at
runtime).  That contract dies quietly if a kernel in
``repro.core.vectorized`` starts consulting an RNG, reading a clock, or
mutating shared engine state — the equivalence suite only catches the
drift for the inputs it happens to run.

RA012 enforces the contract statically and *transitively*: no function
defined in ``repro.core.vectorized`` may reach — directly or through
any resolvable call chain — an RNG draw, a wall/monotonic clock read, a
``global`` statement, or an attribute write through an ``engine`` /
``service`` reference.  Findings anchor at the offending site (or the
call site whose callee reaches one), so the witness is always in the
kernel file itself.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["VectorizedPurityRule"]

_SCOPE = "repro.core.vectorized"


class VectorizedPurityRule(Rule):
    id = "RA012"
    title = "vectorized kernels must not reach RNG/clock/shared-state mutation"
    rationale = (
        "The vectorized==pure bit-identity contract (batch-matrix CI) "
        "only survives if kernels are deterministic pure functions of "
        "their inputs."
    )
    needs_flow = True

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith(_SCOPE)

    def check(self, ctx: FileContext) -> List[Finding]:
        flow = ctx.flow
        if flow is None:
            return []
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        for key in sorted(flow.functions):
            fn = flow.functions[key]
            if fn.site.path != ctx.path:
                continue
            witness = flow.impure_witness(fn.key)
            if witness is None:
                continue
            site, description = witness
            dedup = (site.path, site.line, description)
            if dedup in seen:
                continue
            seen.add(dedup)
            findings.append(
                Finding(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    rule=self.id,
                    message=(
                        f"vectorized kernel {fn.qualname} is impure: "
                        f"{description}"
                    ),
                )
            )
        return findings
