"""RA002 — exception taxonomy discipline.

Library code under ``repro`` raises members of the
:class:`~repro.exceptions.ReproError` hierarchy so the service facade can
map failures to the closed wire-protocol ``code`` enum by *type*.  This
rule flags:

* ``raise SomeError(...)`` where ``SomeError`` is a recognisable
  exception class that is neither a ``ReproError`` subclass nor on the
  small builtin allowlist (argument-validation ``ValueError`` /
  ``TypeError``, control-flow ``SystemExit`` etc.);
* blind handlers — bare ``except:``, ``except Exception:``,
  ``except BaseException:`` — whose body neither re-raises nor carries a
  justification comment on the ``except`` line.

Names the rule cannot resolve (``raise exc`` of a caught variable,
``raise cls(...)``) are skipped rather than guessed at.  Classes defined
in the analysed file whose bases chain to an allowed name are allowed
too, so local ``class FooError(ReproError)`` definitions need no
suppression.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, List, Optional, Set

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.rules.common import (
    call_name,
    exception_names,
    handler_type_names,
)

__all__ = ["ExceptionTaxonomyRule", "ALLOWED_BUILTIN_RAISES"]

#: Builtins that remain legitimate raises inside library code.
ALLOWED_BUILTIN_RAISES = frozenset(
    {
        "ValueError",  # argument validation at API boundaries
        "TypeError",  # argument validation at API boundaries
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "KeyboardInterrupt",
        "SystemExit",  # CLI entry points
    }
)

_BLIND = frozenset({"Exception", "BaseException"})


def _repro_error_names() -> FrozenSet[str]:
    """Names of every ``ReproError`` subclass, by runtime introspection.

    Falls back to a pinned snapshot when :mod:`repro.exceptions` is not
    importable (e.g. the analyzer running against a foreign checkout).
    """
    try:
        from repro import exceptions as exc_mod
    except Exception:  # pragma: no cover - import environment broken
        return frozenset(
            {
                "ReproError",
                "GraphError",
                "QueryError",
                "DatasetError",
                "IndexBuildError",
                "BudgetError",
            }
        )
    base = exc_mod.ReproError
    return frozenset(
        name
        for name in dir(exc_mod)
        if isinstance(getattr(exc_mod, name), type)
        and issubclass(getattr(exc_mod, name), base)
    )


def _contains_raise(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


class ExceptionTaxonomyRule(Rule):
    id = "RA002"
    title = "raise ReproError subclasses; no silent blind excepts"
    rationale = (
        "The facade's error->code mapping and the 'no library exception "
        "escapes execute' contract both depend on a closed taxonomy; "
        "swallowed blind excepts hide real defects."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        allowed: Set[str] = set(_repro_error_names()) | set(ALLOWED_BUILTIN_RAISES)
        builtin_exceptions = exception_names()
        # Two passes so locally-defined chains (A(ReproError), B(A)) resolve.
        for _ in range(2):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    base_names = {
                        name
                        for name in (call_name(b) for b in node.bases)
                        if name is not None
                    }
                    if base_names & allowed:
                        allowed.add(node.name)

        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                finding = self._check_raise(ctx, node, allowed, builtin_exceptions)
                if finding is not None:
                    findings.append(finding)
            elif isinstance(node, ast.ExceptHandler):
                finding = self._check_handler(ctx, node)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _check_raise(
        self,
        ctx: FileContext,
        node: ast.Raise,
        allowed: Set[str],
        builtin_exceptions: FrozenSet[str],
    ) -> Optional[Finding]:
        if node.exc is None:
            return None  # bare re-raise
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        name = call_name(target)
        if name is None or name in allowed:
            return None
        looks_like_exception = (
            name in builtin_exceptions
            or name.endswith("Error")
            or name.endswith("Exception")
        )
        if not (name[:1].isupper() and looks_like_exception):
            return None  # unresolvable variable; do not guess
        return self.finding(
            ctx,
            node,
            f"raise of `{name}` outside the ReproError taxonomy "
            f"(use a ReproError subclass, or an allowlisted builtin)",
        )

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Optional[Finding]:
        names = handler_type_names(node)
        blind = node.type is None or bool(names & _BLIND)
        if not blind:
            return None
        if _contains_raise(node.body):
            return None
        if ctx.has_comment_on_line(node.lineno):
            return None
        caught = "bare except" if node.type is None else f"except {sorted(names)[0]}"
        return self.finding(
            ctx,
            node,
            f"blind `{caught}` without re-raise or justification comment "
            f"(narrow it, re-raise, or justify on the except line)",
        )
