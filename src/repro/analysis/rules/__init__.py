"""The ``RAxxx`` rule registry.

Adding a rule: subclass :class:`~repro.analysis.engine.Rule` in a module
here, give it the next free id, append an instance to :data:`ALL_RULES`,
add a good/bad fixture pair under ``tests/analysis_fixtures/`` and a row
to the README rule table.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.engine import Rule
from repro.analysis.rules.backend import BackendPurityRule
from repro.analysis.rules.budget import BudgetDisciplineRule
from repro.analysis.rules.clock import MonotonicClockRule
from repro.analysis.rules.engine_steps import EngineStepDisciplineRule
from repro.analysis.rules.faults import FaultPointLiteralRule
from repro.analysis.rules.flow_budget import BudgetTaintRule
from repro.analysis.rules.flow_locks import (
    BlockingUnderLockRule,
    LockOrderCycleRule,
)
from repro.analysis.rules.flow_purity import VectorizedPurityRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.metrics import MetricCatalogueRule
from repro.analysis.rules.taxonomy import ExceptionTaxonomyRule

__all__ = ["ALL_RULES", "rules_by_id"]

ALL_RULES: Tuple[Rule, ...] = (
    LockDisciplineRule(),
    ExceptionTaxonomyRule(),
    MetricCatalogueRule(),
    BudgetDisciplineRule(),
    BackendPurityRule(),
    MonotonicClockRule(),
    FaultPointLiteralRule(),
    EngineStepDisciplineRule(),
    LockOrderCycleRule(),
    BlockingUnderLockRule(),
    BudgetTaintRule(),
    VectorizedPurityRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    """Stable-id -> rule instance map (for ``--select`` and docs)."""
    return {rule.id: rule for rule in ALL_RULES}
