"""Shared AST helpers for the ``RAxxx`` rules."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

__all__ = [
    "call_name",
    "exception_names",
    "handler_type_names",
    "is_trivial_body",
    "receiver_of",
    "walk_stopping_at_functions",
]


def call_name(func: ast.expr) -> Optional[str]:
    """The terminal name of a call target (``a.b.C(...)`` -> ``C``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def receiver_of(node: ast.Attribute) -> Optional[str]:
    """The simple-name receiver of an attribute access, if any.

    ``self._adj`` -> ``"self"``; ``graph._adj`` -> ``"graph"``;
    ``f()._adj`` -> ``None``.
    """
    if isinstance(node.value, ast.Name):
        return node.value.id
    return None


def handler_type_names(handler: ast.ExceptHandler) -> FrozenSet[str]:
    """The class names an ``except`` clause catches (empty for bare)."""
    node = handler.type
    if node is None:
        return frozenset()
    names = []
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        name = call_name(element)
        if name is not None:
            names.append(name)
    return frozenset(names)


def is_trivial_body(body: list) -> bool:
    """Whether a handler body does nothing (``pass`` / ``...`` / ``continue``)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


def exception_names() -> FrozenSet[str]:
    """Every builtin exception class name (``ValueError``, ...)."""
    import builtins

    return frozenset(
        name
        for name in dir(builtins)
        if isinstance(getattr(builtins, name), type)
        and issubclass(getattr(builtins, name), BaseException)
    )


def walk_stopping_at_functions(node: ast.AST) -> Iterator[ast.AST]:
    """Yield descendants without crossing into nested function/class defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))
