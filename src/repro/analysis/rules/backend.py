"""RA005 — backend purity outside :mod:`repro.graph`.

The traversal/sketch/portal/semantics layers run over three graph
backends through the :class:`~repro.graph.protocol.GraphLike` protocol;
code that reaches into a concrete backend's internals (the dict
backend's ``_adj``/``_label_index``, the CSR backend's
``_indptr``/``_indices``/``_weights``/id tables, or the backend-specific
``csr()`` accessor) silently breaks the other backends and the
bit-identical frozen/dict equivalence suite.

The rule flags any access to a backend-internal member from a module
outside ``repro.graph``, with two escapes:

* ``self.<attr>`` accesses in a module that itself assigns that
  attribute are that module's *own* state (e.g. the portal distance
  map's private ``_adj``), not a graph-backend poke;
* deliberate int-specialised fast paths may keep a justified
  ``# ra: ignore[RA005]`` on the access line.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["BackendPurityRule", "BACKEND_INTERNAL_MEMBERS"]

#: Private members of LabeledGraph / FrozenGraph, plus the
#: backend-specific public ``csr()`` accessor (not part of GraphLike).
BACKEND_INTERNAL_MEMBERS = frozenset(
    {
        "_adj",
        "_label_index",
        "_set_labels",
        "_indptr",
        "_indices",
        "_weights",
        "_id_of",
        "_vertex_of",
        "_label_ids",
        "_labels_by_id",
        "csr",
    }
)


def _own_attributes(tree: ast.Module) -> Set[str]:
    """Attributes the module assigns on ``self`` (its own state)."""
    own: Set[str] = set()

    def collect(target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        elif isinstance(target, ast.Attribute):
            own.add(target.attr)

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                collect(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            collect(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            own.add(node.name)  # a locally-defined method is not a poke
    return own


class BackendPurityRule(Rule):
    id = "RA005"
    title = "only GraphLike members outside repro.graph"
    rationale = (
        "Algorithms must run identically over the dict and CSR backends; "
        "internal pokes pin code to one backend and break equivalence."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if not (ctx.module == "repro" or ctx.module.startswith("repro.")):
            return False
        if ctx.module.startswith("repro.graph"):
            return False
        return not ctx.module.startswith("repro.analysis")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        own = _own_attributes(ctx.tree)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if attr not in BACKEND_INTERNAL_MEMBERS or attr in own:
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"access to backend-internal `{attr}` outside "
                    f"repro.graph (use the GraphLike protocol, or justify "
                    f"a fast path with `# ra: ignore[RA005]`)",
                )
            )
        return findings
