"""RA007 — fault points are named constants, never string literals.

The fault-point catalogue (:mod:`repro.faults.points`) exists so a
renamed or retired injection point breaks loudly at import time.  A
string literal at a call site defeats that: ``fire("persist.save.writ")``
arms nothing and a chaos schedule silently stops covering the path it
was written for.  This rule flags any string literal passed where a
:class:`~repro.faults.points.FaultPoint` belongs — the point argument of
``fire`` / ``wrap_write`` / ``FaultSpec`` / ``point_named`` calls
(positional or ``point=`` keyword) — anywhere in ``repro`` outside the
:mod:`repro.faults` package itself (whose registry and parser *define*
the names).

Constructing a :class:`~repro.faults.points.FaultPoint` directly is
flagged for the same reason: an ad-hoc point bypasses the catalogue
registry, so it never appears in ``all_points()`` (seeded chaos
schedules skip it) nor in the README's fault-point table.  New points
belong in :mod:`repro.faults.points`, next to the rest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["FaultPointLiteralRule", "POINT_ARG_BY_CALL"]

#: Call name -> index of its fault-point positional argument.
POINT_ARG_BY_CALL: Dict[str, int] = {
    "fire": 0,
    "wrap_write": 1,
    "FaultSpec": 0,
    "point_named": 0,
}


class FaultPointLiteralRule(Rule):
    id = "RA007"
    title = "fault points must be named constants from repro.faults.points"
    rationale = (
        "A string-literal point name silently disarms chaos coverage when "
        "the point is renamed; the catalogue constant fails at import time."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module == "repro.faults" or ctx.module.startswith("repro.faults."):
            return False
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name == "FaultPoint":
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "FaultPoint constructed outside repro.faults: "
                        "ad-hoc points bypass the catalogue (all_points(), "
                        "the README table, seeded chaos schedules) — add "
                        "the point to repro.faults.points instead",
                    )
                )
                continue
            if name not in POINT_ARG_BY_CALL:
                continue
            candidates: List[ast.expr] = []
            index = POINT_ARG_BY_CALL[name]
            if len(node.args) > index:
                candidates.append(node.args[index])
            for kw in node.keywords:
                if kw.arg == "point":
                    candidates.append(kw.value)
            for arg in candidates:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    findings.append(
                        self.finding(
                            ctx,
                            arg,
                            f"`{name}` takes a FaultPoint constant from "
                            f"repro.faults.points, not the string literal "
                            f"{arg.value!r}",
                        )
                    )
        return findings
