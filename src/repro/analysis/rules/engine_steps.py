"""RA008 — semantics modules do not hand-roll the step loop.

:func:`repro.core.engine.run_pipeline` is the single place that times
steps, checks budgets at step boundaries, observes
``ppkws_step_seconds`` / ``ppkws_query_work_total`` and assembles
degraded results.  The whole point of the refactor that introduced it is
that a ``repro/core/pp_*.py`` module contributes *step functions* and a
:class:`~repro.core.engine.SemanticsSpec` — nothing else.  A pipeline
module that re-grows its own ``_Timer`` / ``breakdown.peval = ...`` /
``except BudgetError`` scaffolding silently forks the degradation
contract: its timings drift from the engine's, its salvage path skips
fault injection, and the equivalence suite no longer pins it.

This rule flags, inside ``repro.core.pp_*`` modules only:

* any reference to the engine's ``_Timer`` helper;
* assignments to attributes of a ``breakdown`` object (including
  ``result.breakdown.peval = ...``) and ``setattr(breakdown, ...)``;
* ``interrupted_step=`` / ``completed_steps=`` keyword arguments —
  manual degradation bookkeeping belongs to the engine;
* ``except BudgetError`` handlers;
* direct calls to ``observe_pipeline``.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["EngineStepDisciplineRule"]

#: Keyword arguments that only the engine's degradation path may pass.
_DEGRADATION_KEYWORDS = frozenset({"interrupted_step", "completed_steps"})


def _is_breakdown_expr(node: ast.expr) -> bool:
    """Whether ``node`` denotes a step-breakdown object.

    Matches the bare name ``breakdown`` and any attribute access ending
    in ``.breakdown`` (e.g. ``result.breakdown``, ``self.breakdown``).
    """
    if isinstance(node, ast.Name):
        return node.id == "breakdown"
    if isinstance(node, ast.Attribute):
        return node.attr == "breakdown"
    return False


class EngineStepDisciplineRule(Rule):
    id = "RA008"
    title = "pipeline modules must not hand-roll the engine's step loop"
    rationale = (
        "Step timing, budget boundary checks, observation and degraded-"
        "result assembly live in repro.core.engine.run_pipeline; a pp_* "
        "module that re-implements them forks the degradation contract "
        "and escapes the equivalence suite."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.core.pp_")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) and node.id == "_Timer":
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "step timing belongs to run_pipeline; do not use "
                        "the engine's `_Timer` in a pipeline module",
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute) and _is_breakdown_expr(
                        target.value
                    ):
                        findings.append(
                            self.finding(
                                ctx,
                                target,
                                f"assigning `breakdown.{target.attr}` by hand; "
                                "run_pipeline records step timings via "
                                "StepBreakdown.record",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if (
                    name == "setattr"
                    and node.args
                    and _is_breakdown_expr(node.args[0])
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "`setattr(breakdown, ...)` hand-rolls the step "
                            "loop; run_pipeline owns breakdown bookkeeping",
                        )
                    )
                if name == "observe_pipeline":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "`observe_pipeline` is called exactly once by "
                            "run_pipeline; pipeline modules must not call it",
                        )
                    )
                for kw in node.keywords:
                    if kw.arg in _DEGRADATION_KEYWORDS:
                        findings.append(
                            self.finding(
                                ctx,
                                kw.value,
                                f"`{kw.arg}=` is degradation bookkeeping owned "
                                "by run_pipeline's salvage path",
                            )
                        )
            elif isinstance(node, ast.ExceptHandler):
                typ = node.type
                handler_names: List[str] = []
                candidates = (
                    typ.elts if isinstance(typ, ast.Tuple) else [typ] if typ else []
                )
                for cand in candidates:
                    if isinstance(cand, ast.Name):
                        handler_names.append(cand.id)
                    elif isinstance(cand, ast.Attribute):
                        handler_names.append(cand.attr)
                if "BudgetError" in handler_names:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "catching BudgetError outside run_pipeline forks "
                            "the degradation contract; let the engine salvage",
                        )
                    )
        return findings
