"""RA001 — lock discipline for the shared registry maps.

The serving tier's correctness under concurrency rests on a handful of
maps only ever being written while their guarding lock is held:

====================== ======================== =========================
attribute              guarded by               owner
====================== ======================== =========================
``_engines``           ``_engines_lock``        ``PPKWSService``
``_epochs``            ``_engines_lock``        ``PPKWSService``
``_network_locks``     ``_network_locks_lock``  ``PPKWSService``
``_attachments``       ``_attachments_lock``    ``PPKWS``
``_attachment_epoch``  ``_attachments_lock``    ``PPKWS``
====================== ======================== =========================

The rule flags any *write* (rebind, item assignment, ``del``, augmented
assignment, or a mutating method call such as ``.pop()``) to one of
these attributes that is not lexically inside a ``with <...>_lock:``
block naming the matching lock.  Reads stay unrestricted — single-key
dict reads are atomic under the GIL and the code comments document where
that is relied upon.  Constructor initialisation (``self._engines = {}``
inside ``__init__``) is exempt: no other thread can hold the object yet.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["LockDisciplineRule", "GUARDED_ATTRIBUTES"]

#: guarded attribute -> the lock attribute that must be held for writes.
GUARDED_ATTRIBUTES: Dict[str, str] = {
    "_engines": "_engines_lock",
    "_epochs": "_engines_lock",
    "_network_locks": "_network_locks_lock",
    "_attachments": "_attachments_lock",
    "_attachment_epoch": "_attachments_lock",
}

#: method calls that mutate a dict/map in place.
_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault", "__setitem__"}
)


def _lock_names_in_with(node: ast.With) -> FrozenSet[str]:
    """Lock attribute/variable names entered by one ``with`` statement."""
    held = set()
    for item in node.items:
        expr = item.context_expr
        name: Optional[str] = None
        if isinstance(expr, ast.Attribute):
            name = expr.attr
        elif isinstance(expr, ast.Name):
            name = expr.id
        if name is not None and name.endswith("_lock"):
            held.add(name)
    return frozenset(held)


class _LockVisitor(ast.NodeVisitor):
    def __init__(self, rule: "LockDisciplineRule", ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.held: List[FrozenSet[str]] = []
        self.function_stack: List[str] = []
        self.findings: List[Finding] = []

    # -- scope tracking -------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        self.held.append(_lock_names_in_with(node))
        self.generic_visit(node)
        self.held.pop()

    visit_AsyncWith = visit_With

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.function_stack.append(node.name)
        self.generic_visit(node)
        self.function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- mutation sites -------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in GUARDED_ATTRIBUTES
        ):
            self._require_lock(func.value.attr, func.value, node)
        self.generic_visit(node)

    # -- helpers --------------------------------------------------------
    def _check_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element, stmt)
            return
        if isinstance(target, ast.Starred):
            self._check_target(target.value, stmt)
            return
        if isinstance(target, ast.Attribute):
            if target.attr in GUARDED_ATTRIBUTES:
                self._require_lock(target.attr, target, stmt)
        elif isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Attribute) and value.attr in GUARDED_ATTRIBUTES:
                self._require_lock(value.attr, value, stmt)

    def _require_lock(
        self, attr: str, access: ast.Attribute, site: ast.AST
    ) -> None:
        required = GUARDED_ATTRIBUTES[attr]
        if any(required in held for held in self.held):
            return
        # Constructor initialisation: the object is not yet shared.
        if (
            self.function_stack
            and self.function_stack[-1] == "__init__"
            and isinstance(access.value, ast.Name)
            and access.value.id == "self"
        ):
            return
        self.findings.append(
            self.rule.finding(
                self.ctx,
                site,
                f"write to `{attr}` outside `with ...{required}:` "
                f"(hold the lock for every registry mutation)",
            )
        )


class LockDisciplineRule(Rule):
    id = "RA001"
    title = "registry writes must hold the matching lock"
    rationale = (
        "PPKWSService._engines/_epochs/_network_locks and "
        "PPKWS._attachments/_attachment_epoch are read by concurrent "
        "requests; unlocked writes race with check-then-act sequences."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        visitor = _LockVisitor(self, ctx)
        visitor.visit(ctx.tree)
        return visitor.findings
