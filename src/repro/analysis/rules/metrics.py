"""RA003 — every ``ppkws_*`` metric literal must be in the catalogue.

Dashboards, alerts and the README's metric table are all written against
metric *names*; a typo'd or undocumented name silently creates a fresh,
unwatched series.  :mod:`repro.obs.catalogue` is the single source of
truth (kept in sync with the README by ``--check-catalogue``); this rule
flags any ``ppkws_``-prefixed string literal passed as the metric-name
argument of a registry write/read call (``inc`` / ``observe`` /
``set_gauge`` / ``value`` / ``histogram``) that the catalogue does not
list.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterable, List

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = ["MetricCatalogueRule", "METRIC_CALL_NAMES"]

#: Registry methods whose first argument is a metric name.
METRIC_CALL_NAMES = frozenset(
    {"inc", "observe", "set_gauge", "value", "histogram", "counter", "gauge"}
)


def _catalogue_names() -> FrozenSet[str]:
    try:
        from repro.obs.catalogue import metric_names
    except Exception:  # pragma: no cover - foreign checkout without catalogue
        return frozenset()
    return metric_names()


class MetricCatalogueRule(Rule):
    id = "RA003"
    title = "metric names must come from repro.obs.catalogue"
    rationale = (
        "An uncatalogued metric name is invisible to dashboards and the "
        "README table; one catalogue keeps the fleet's eyes consistent."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module == "repro" or ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        known = _catalogue_names()
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            method = None
            if isinstance(func, ast.Attribute):
                method = func.attr
            elif isinstance(func, ast.Name):
                method = func.id
            if method not in METRIC_CALL_NAMES or not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant) and isinstance(first.value, str)
            ):
                continue
            name = first.value
            if name.startswith("ppkws_") and name not in known:
                findings.append(
                    self.finding(
                        ctx,
                        first,
                        f"metric `{name}` is not in repro/obs/catalogue.py "
                        f"(add it there and to the README metric table)",
                    )
                )
        return findings
