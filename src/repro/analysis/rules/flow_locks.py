"""RA009 / RA010: interprocedural lock-order and blocking-under-lock.

Both rules consume the shared :class:`repro.analysis.flow.ProjectFlow`
(``needs_flow = True``): findings are computed once per project and
cached on the flow object, then filtered per file so the ordinary
``# ra: ignore[...]`` machinery applies.

RA009 — lock-order cycles.  Every "token A held while token B is taken"
pair (lexical *and* through calls made under a lock) becomes an edge;
a strongly connected component with two or more tokens means two code
paths can acquire the same locks in conflicting orders — the classic
deadlock precondition.  Same-token edges are excluded by construction
(token identity cannot tell two instances of a per-object lock family
apart), so re-entrant per-network locks do not self-report.

RA010 — blocking while holding an *exclusive* lock.  Catalogued
potentially-blocking operations (file IO, pickle, ``copy.deepcopy``,
``time.sleep``, pipe/queue ops, future waits, executor submits) may not
run while a mutex / rwlock write side is held, directly or through any
resolvable call chain.  The rwlock *read* side is deliberately exempt:
queries run under per-network read locks by design and readers do not
serialize each other.  Deliberate hold-while-blocking patterns are
catalogued in :data:`BLOCKING_ALLOWLIST` with their justification —
additions belong there, not in inline suppressions, so the inventory of
"locks that own a slow resource" stays reviewable in one place.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.flow import ProjectFlow, is_exclusive_token
from repro.analysis.summaries import Site, base_token

__all__ = [
    "BLOCKING_ALLOWLIST",
    "BlockingUnderLockRule",
    "LockOrderCycleRule",
]

#: base lock token -> justification for blocking while it is held.
#: Every entry documents a lock whose *purpose* is to own a slow
#: resource; holding it across the slow operation is the design, not an
#: accident.  Keep justifications concrete — this table is the audit
#: trail the README points at.
BLOCKING_ALLOWLIST: Dict[str, str] = {
    # The per-worker pipe lock exists to grant exclusive ownership of a
    # shard worker's duplex pipe for one request/response round-trip;
    # conn.send/recv under it is the lock's entire job.
    "lock": "per-worker pipe lock owns the conn across one send/recv round-trip",
    # The shard admin log lock serializes admin broadcasts so replayed
    # logs reconstruct the same state; the broadcast IPC happens under
    # it by design (admin ops are rare, queries never take it).
    "ShardServingPool._log_lock": (
        "admin-log lock serializes broadcast round-trips for replayability"
    ),
    # Admin mutations persist indexes/graphs under the per-network write
    # lock so readers never observe a half-written snapshot; the write
    # side is exclusive-by-contract and admin-only.
    "PPKWSService._network_lock": (
        "admin mutations persist snapshots under the per-network write lock"
    ),
}


def _cached(
    rule: Rule,
    ctx: FileContext,
    compute: Callable[[ProjectFlow], List[Finding]],
) -> List[Finding]:
    flow = ctx.flow
    if flow is None:
        return []
    findings = flow.rule_cache.get(rule.id)
    if findings is None:
        findings = compute(flow)
        flow.rule_cache[rule.id] = findings
    return [f for f in findings if f.path == ctx.path]


class LockOrderCycleRule(Rule):
    id = "RA009"
    title = "lock-order graph must be acyclic (potential deadlock)"
    rationale = (
        "Two paths acquiring the same locks in opposite orders deadlock "
        "under contention; the serving stack holds too many locks for "
        "ordering to be checked by eye."
    )
    needs_flow = True

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> List[Finding]:
        return _cached(self, ctx, self._compute)

    def _compute(self, flow: ProjectFlow) -> List[Finding]:
        findings: List[Finding] = []
        for members, witnesses in flow.lock_cycles():
            if not witnesses:
                continue
            anchor = witnesses[0]
            shown = "; ".join(
                f"{e.via} at {e.site.path}:{e.site.line}"
                for e in witnesses[:4]
            )
            findings.append(
                Finding(
                    path=anchor.site.path,
                    line=anchor.site.line,
                    col=anchor.site.col,
                    rule=self.id,
                    message=(
                        "lock-order cycle between "
                        f"{{{', '.join(sorted(members))}}}: {shown}"
                    ),
                )
            )
        return findings


class BlockingUnderLockRule(Rule):
    id = "RA010"
    title = "no blocking operation while holding an exclusive lock"
    rationale = (
        "A deepcopy/IO/IPC under a mutex turns every concurrent query "
        "into a convoy (the PR 8 AnswerCache bug); the read side of the "
        "rwlock is exempt because readers do not serialize each other."
    )
    needs_flow = True

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro.")

    def check(self, ctx: FileContext) -> List[Finding]:
        return _cached(self, ctx, self._compute)

    @staticmethod
    def _flagged_tokens(held: FrozenSet[str]) -> List[str]:
        return sorted(
            base_token(tok)
            for tok in held
            if is_exclusive_token(tok)
            and base_token(tok) not in BLOCKING_ALLOWLIST
        )

    def _compute(self, flow: ProjectFlow) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()

        def emit(site: Site, message: str) -> None:
            key = (site.path, site.line, message)
            if key in seen:
                return
            seen.add(key)
            findings.append(
                Finding(
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    rule=self.id,
                    message=message,
                )
            )

        for key in sorted(flow.functions):
            fn = flow.functions[key]
            for op in fn.blocking:
                locks = self._flagged_tokens(op.held)
                if locks:
                    emit(
                        op.site,
                        f"blocking {op.kind} ({op.detail}) while holding "
                        f"exclusive lock {locks[0]}",
                    )
            for call in fn.calls:
                locks = self._flagged_tokens(call.held)
                if not locks:
                    continue
                for callee in flow.resolve(fn, call):
                    chain = flow.block_reason(callee.key)
                    if chain is None:
                        continue
                    path = " -> ".join((callee.qualname,) + chain[:-1])
                    emit(
                        call.site,
                        f"call to {path} may block ({chain[-1]}) while "
                        f"holding exclusive lock {locks[0]}",
                    )
                    break
        return findings
