"""The interprocedural fixpoint: call graph + whole-project analyses.

This is the ARefine half of the analysis pass (see
:mod:`repro.analysis.summaries` for the PEval half): per-function
summaries are stitched into a project call graph and a small family of
demand-driven fixpoints answers the questions the RA009–RA012 rules ask:

* :meth:`ProjectFlow.acquired_tokens` — every lock token a function may
  take, transitively through its callees (feeds the lock-order graph);
* :meth:`ProjectFlow.lock_order_edges` / :meth:`ProjectFlow.lock_cycles`
  — the "token A held while token B is taken" graph and its strongly
  connected components (a multi-token SCC is a potential deadlock);
* :meth:`ProjectFlow.block_reason` — may this function block, and
  through which call chain (feeds blocking-under-lock);
* :meth:`ProjectFlow.expands` — does this function (transitively) run a
  vertex-expanding traversal (feeds budget-taint);
* :meth:`ProjectFlow.impure_witness` — can this function reach RNG /
  clock / shared-engine mutation (feeds the vectorized purity rule).

Call resolution is deliberately *may*-analysis: ``self.method()``
resolves within the defining class, bare names through module functions
and ``from``-imports, ``ClassName(...)`` to ``__init__``, and plain
attribute calls by (non-generic) unique-ish method name with a small
candidate cap.  Over-linking can only add edges, so the analyses stay
conservative; generic builtin-shaped names are skipped so the graph is
not wired to ``dict.get`` noise.

All fixpoints are memoised depth-first traversals with an on-stack guard:
a cycle member contributes nothing on re-entry (its direct facts were
already collected on first entry), which is the standard least-fixpoint
shortcut for purely-additive (union) transfer functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import FileContext, Finding
from repro.analysis.summaries import (
    CallSite,
    FunctionSummary,
    GENERIC_METHOD_NAMES,
    ModuleSummary,
    Site,
    base_token,
    summarize_module,
)

__all__ = ["LockEdge", "ProjectFlow", "build_flow", "is_exclusive_token"]

FnKey = Tuple[str, str]

#: more same-named methods than this and an attr call resolves to nothing
#: (linking a popular name everywhere would flood the graph with noise).
_ATTR_CANDIDATE_CAP = 3


@dataclass(frozen=True)
class LockEdge:
    """``held`` was held while ``taken`` was acquired at ``site``."""

    held: str
    taken: str
    site: Site
    via: str  #: human description: who acquired, through which call


def is_exclusive_token(token: str) -> bool:
    """A held token blocks other acquirers (read side does not)."""
    return not token.endswith(":read")


class ProjectFlow:
    """Call graph + fixpoints over one set of module summaries."""

    def __init__(self, modules: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {m.module: m for m in modules}
        self.functions: Dict[FnKey, FunctionSummary] = {}
        self._methods_by_name: Dict[str, List[FunctionSummary]] = {}
        self._module_funcs: Dict[Tuple[str, str], FunctionSummary] = {}
        self._class_method: Dict[Tuple[str, str], FunctionSummary] = {}
        self._class_init: Dict[str, FunctionSummary] = {}
        for mod in modules:
            for fn in mod.functions:
                self.functions[fn.key] = fn
                if fn.cls is not None and fn.qualname == f"{fn.cls}.{fn.name}":
                    self._methods_by_name.setdefault(fn.name, []).append(fn)
                    self._class_method[(fn.cls, fn.name)] = fn
                    if fn.name == "__init__":
                        self._class_init[fn.cls] = fn
                elif fn.cls is None and fn.qualname == fn.name:
                    self._module_funcs[(fn.module, fn.name)] = fn
        # memo tables for the demand-driven fixpoints
        self._acquired: Dict[FnKey, Dict[str, Site]] = {}
        self._block: Dict[FnKey, Optional[Tuple[str, ...]]] = {}
        self._expands: Dict[FnKey, bool] = {}
        self._impure: Dict[FnKey, Optional[Tuple[Site, str]]] = {}
        self._edges: Optional[List[LockEdge]] = None
        self._cycles: Optional[List[Tuple[FrozenSet[str], List[LockEdge]]]] = None
        #: per-rule finding cache filled by the flow rules (keyed rule id)
        self.rule_cache: Dict[str, List[Finding]] = {}

    # -- call resolution ------------------------------------------------
    def resolve(
        self, caller: FunctionSummary, call: CallSite
    ) -> List[FunctionSummary]:
        """Possible project-local targets of one call site (may-analysis)."""
        name = call.name
        if call.kind == "self" and call.receiver is None:
            if caller.cls is not None:
                hit = self._class_method.get((caller.cls, name))
                if hit is not None:
                    return [hit]
            return self._by_method_name(name)
        if call.kind == "bare":
            nested = self.functions.get(
                (caller.module, f"{caller.qualname}.<locals>.{name}")
            )
            if nested is not None:
                return [nested]
            local = self._module_funcs.get((caller.module, name))
            if local is not None:
                return [local]
            init = self._class_init.get(name)
            if init is not None:
                return [init]
            mod = self.modules.get(caller.module)
            if mod is not None and name in mod.imported_names:
                src_module, attr = mod.imported_names[name]
                target = self._module_funcs.get((src_module, attr))
                if target is not None:
                    return [target]
                init = self._class_init.get(attr)
                if init is not None:
                    return [init]
            return []
        if call.kind == "module" and call.receiver is not None:
            mod = self.modules.get(caller.module)
            if mod is not None:
                dotted = mod.module_aliases.get(call.receiver)
                if dotted is not None:
                    target = self._module_funcs.get((dotted, name))
                    if target is not None:
                        return [target]
            return self._by_method_name(name)
        return self._by_method_name(name)

    def _by_method_name(self, name: str) -> List[FunctionSummary]:
        if name in GENERIC_METHOD_NAMES:
            return []
        candidates = self._methods_by_name.get(name, [])
        if 0 < len(candidates) <= _ATTR_CANDIDATE_CAP:
            return candidates
        return []

    # -- fixpoint: transitively acquired lock tokens --------------------
    def acquired_tokens(
        self, key: FnKey, _stack: Optional[Set[FnKey]] = None
    ) -> Dict[str, Site]:
        """Every lock token ``key`` may take, with one witness site each."""
        if key in self._acquired:
            return self._acquired[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return {}
        fn = self.functions.get(key)
        if fn is None:
            return {}
        stack.add(key)
        out: Dict[str, Site] = {}
        for lu in fn.locks:
            out.setdefault(lu.token, lu.site)
        for call in fn.calls:
            for callee in self.resolve(fn, call):
                for token, site in self.acquired_tokens(
                    callee.key, stack
                ).items():
                    out.setdefault(token, site)
        stack.discard(key)
        self._acquired[key] = out
        return out

    # -- fixpoint: may this function block? -----------------------------
    def block_reason(
        self, key: FnKey, _stack: Optional[Set[FnKey]] = None
    ) -> Optional[Tuple[str, ...]]:
        """A witness chain ending in a blocking op, or ``None``.

        ``("_flush", "open(...) [file-io]")`` reads: calls ``_flush``,
        which performs catalogued file IO.
        """
        if key in self._block:
            return self._block[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return None
        fn = self.functions.get(key)
        if fn is None:
            return None
        stack.add(key)
        witness: Optional[Tuple[str, ...]] = None
        if fn.blocking:
            op = fn.blocking[0]
            witness = (f"{op.detail} [{op.kind}]",)
        else:
            for call in fn.calls:
                for callee in self.resolve(fn, call):
                    inner = self.block_reason(callee.key, stack)
                    if inner is not None:
                        witness = (callee.qualname,) + inner
                        break
                if witness is not None:
                    break
        stack.discard(key)
        self._block[key] = witness
        return witness

    # -- fixpoint: transitively expanding traversal ---------------------
    def expands(self, key: FnKey, _stack: Optional[Set[FnKey]] = None) -> bool:
        if key in self._expands:
            return self._expands[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return False
        fn = self.functions.get(key)
        if fn is None:
            return False
        stack.add(key)
        result = fn.expands or any(
            self.expands(callee.key, stack)
            for call in fn.calls
            for callee in self.resolve(fn, call)
        )
        stack.discard(key)
        self._expands[key] = result
        return result

    # -- fixpoint: reachable impurity (RA012 raw material) --------------
    def impure_witness(
        self, key: FnKey, _stack: Optional[Set[FnKey]] = None
    ) -> Optional[Tuple[Site, str]]:
        """First reachable RNG/clock/mutation, anchored in ``key``'s file."""
        if key in self._impure:
            return self._impure[key]
        stack = _stack if _stack is not None else set()
        if key in stack:
            return None
        fn = self.functions.get(key)
        if fn is None:
            return None
        stack.add(key)
        witness: Optional[Tuple[Site, str]] = None
        if fn.impure:
            op = fn.impure[0]
            witness = (op.site, f"{op.kind}: {op.detail}")
        else:
            for call in fn.calls:
                for callee in self.resolve(fn, call):
                    inner = self.impure_witness(callee.key, stack)
                    if inner is not None:
                        witness = (
                            call.site,
                            f"reaches {callee.qualname} -> {inner[1]}",
                        )
                        break
                if witness is not None:
                    break
        stack.discard(key)
        self._impure[key] = witness
        return witness

    # -- the lock-order graph -------------------------------------------
    def lock_order_edges(self) -> List[LockEdge]:
        """All "A held while B taken" edges, lexical and interprocedural.

        Edges between the *same* base token are dropped: token identity
        cannot distinguish two instances of a per-object lock family, so
        a same-token edge would flag every re-entrant family as a
        deadlock with itself.
        """
        if self._edges is not None:
            return self._edges
        edges: List[LockEdge] = []
        seen: Set[Tuple[str, str, str, int]] = set()

        def add(held: str, taken: str, site: Site, via: str) -> None:
            hb, tb = base_token(held), base_token(taken)
            if hb == tb:
                return
            dedup = (hb, tb, site.path, site.line)
            if dedup in seen:
                return
            seen.add(dedup)
            edges.append(LockEdge(held=hb, taken=tb, site=site, via=via))

        for key in sorted(self.functions):
            fn = self.functions[key]
            for lu in fn.locks:
                for held in sorted(lu.held):
                    add(
                        held,
                        lu.token,
                        lu.site,
                        f"{fn.qualname} takes {base_token(lu.token)}"
                        f" while holding {base_token(held)}",
                    )
            for call in fn.calls:
                if not call.held:
                    continue
                for callee in self.resolve(fn, call):
                    for token, _ in sorted(
                        self.acquired_tokens(callee.key).items()
                    ):
                        for held in sorted(call.held):
                            add(
                                held,
                                token,
                                call.site,
                                f"{fn.qualname} calls {callee.qualname}"
                                f" (which may take {base_token(token)})"
                                f" while holding {base_token(held)}",
                            )
        self._edges = edges
        return edges

    def lock_cycles(self) -> List[Tuple[FrozenSet[str], List[LockEdge]]]:
        """Multi-token SCCs of the lock-order graph, with witness edges.

        Each SCC is a set of lock tokens that can be acquired in
        conflicting orders — the classic deadlock precondition.  The
        witness list holds one edge per (src, dst) pair inside the SCC,
        sorted by site, so the report can show both directions.
        """
        if self._cycles is not None:
            return self._cycles
        edges = self.lock_order_edges()
        graph: Dict[str, Set[str]] = {}
        for e in edges:
            graph.setdefault(e.held, set()).add(e.taken)
            graph.setdefault(e.taken, set())

        # Tarjan's SCC, iterative (analysis trees can be deep).
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, Iterable[str]]] = [
                (root, iter(sorted(graph[root])))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)

        out: List[Tuple[FrozenSet[str], List[LockEdge]]] = []
        for component in sccs:
            if len(component) < 2:
                continue
            members = frozenset(component)
            witness_by_pair: Dict[Tuple[str, str], LockEdge] = {}
            for e in edges:
                if e.held in members and e.taken in members:
                    pair = (e.held, e.taken)
                    best = witness_by_pair.get(pair)
                    if best is None or (
                        (e.site.path, e.site.line)
                        < (best.site.path, best.site.line)
                    ):
                        witness_by_pair[pair] = e
            witnesses = sorted(
                witness_by_pair.values(),
                key=lambda e: (e.site.path, e.site.line, e.held, e.taken),
            )
            out.append((members, witnesses))
        out.sort(key=lambda item: sorted(item[0]))
        self._cycles = out
        return out


def build_flow(contexts: Sequence[FileContext]) -> ProjectFlow:
    """Summarize every parsed file and assemble the project flow."""
    return ProjectFlow([summarize_module(ctx) for ctx in contexts])
