"""``repro.analysis`` — AST-based invariant linter for the PPKWS tree.

The serving stack accumulated cross-cutting contracts that ordinary
linters cannot see: registry maps may only be written under their locks,
errors must come from the :class:`~repro.exceptions.ReproError` taxonomy,
metric names must be drawn from the generated catalogue
(:mod:`repro.obs.catalogue`), expansion loops must honour query budgets,
algorithm layers must stay behind the :class:`~repro.graph.protocol.GraphLike`
protocol, and durations must never be measured with the wall clock.
Each contract is a :class:`~repro.analysis.engine.Rule` with a stable
``RAxxx`` id; the engine parses every file once and dispatches the
selected rules over the tree.

On top of the per-file rules sits an interprocedural layer
(:mod:`repro.analysis.summaries` + :mod:`repro.analysis.flow`): cheap
per-function summaries feed a call-graph fixpoint powering lock-order
cycle detection (RA009), blocking-under-lock (RA010), budget-taint
(RA011) and vectorized-kernel purity (RA012).

Run it as a module::

    python -m repro.analysis [--format json|sarif] [--select RA001,RA005] \
        [--baseline analysis_baseline.json] paths...

Findings can be suppressed per line with ``# ra: ignore[RA001]`` (or
``# ra: ignore`` for every rule) and per file with a
``# ra: ignore-file[RA003]`` comment; suppressions should carry a
justification in the surrounding comment.  See the README's
"Static analysis & typing" section for the rule table.
"""

from repro.analysis.engine import (
    AnalysisResult,
    FileContext,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.flow import ProjectFlow, build_flow
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, rules_by_id
from repro.analysis.summaries import FunctionSummary, summarize_module

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "FileContext",
    "Finding",
    "FunctionSummary",
    "ProjectFlow",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "build_flow",
    "iter_python_files",
    "render_json",
    "render_text",
    "rules_by_id",
    "summarize_module",
]
