"""``repro.analysis`` — AST-based invariant linter for the PPKWS tree.

The serving stack accumulated cross-cutting contracts that ordinary
linters cannot see: registry maps may only be written under their locks,
errors must come from the :class:`~repro.exceptions.ReproError` taxonomy,
metric names must be drawn from the generated catalogue
(:mod:`repro.obs.catalogue`), expansion loops must honour query budgets,
algorithm layers must stay behind the :class:`~repro.graph.protocol.GraphLike`
protocol, and durations must never be measured with the wall clock.
Each contract is a :class:`~repro.analysis.engine.Rule` with a stable
``RAxxx`` id; the engine parses every file once and dispatches the
selected rules over the tree.

Run it as a module::

    python -m repro.analysis [--format json] [--select RA001,RA005] paths...

Findings can be suppressed per line with ``# ra: ignore[RA001]`` (or
``# ra: ignore`` for every rule) and per file with a
``# ra: ignore-file[RA003]`` comment; suppressions should carry a
justification in the surrounding comment.  See the README's
"Static analysis & typing" section for the rule table.
"""

from repro.analysis.engine import (
    AnalysisResult,
    FileContext,
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "FileContext",
    "Finding",
    "Rule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "render_json",
    "render_text",
    "rules_by_id",
]
