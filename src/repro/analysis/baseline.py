"""The findings baseline: ratchet noisy rules in without blocking CI.

A baseline file records the findings that existed when a rule landed;
CI then fails only on *new* findings (``--baseline`` on the CLI,
``--check-baseline`` in ``scripts/analysis_report.py``).  Entries are
keyed ``(rule, path, message)`` — deliberately not by line, matching
the report script's diff key, so unrelated edits that shift a known
finding do not break the build while any new instance of it does.

The committed ``analysis_baseline.json`` may only shrink: fixing a
baselined finding should delete its entry (``--update-baseline``
rewrites the file from a clean run), never grow the list.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analysis.engine import AnalysisResult, Finding

__all__ = [
    "BaselineError",
    "finding_key",
    "load_baseline",
    "new_findings",
    "render_baseline",
]

Key = Tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally wrong."""


def finding_key(finding: Finding) -> Key:
    """The line-insensitive identity used by the ratchet and the report."""
    return (finding.rule, finding.path, finding.message)


def load_baseline(path: str) -> Set[Key]:
    """Parse a baseline file into its key set."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    entries = doc.get("findings") if isinstance(doc, dict) else None
    if not isinstance(entries, list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    keys: Set[Key] = set()
    for entry in entries:
        if not isinstance(entry, dict) or not {
            "rule", "path", "message"
        } <= set(entry):
            raise BaselineError(
                f"baseline {path}: each finding needs rule/path/message"
            )
        keys.add((str(entry["rule"]), str(entry["path"]), str(entry["message"])))
    return keys


def new_findings(
    result: AnalysisResult, baseline: Set[Key]
) -> Tuple[List[Finding], int]:
    """Split findings into (not-in-baseline, baselined-count)."""
    fresh = [f for f in result.findings if finding_key(f) not in baseline]
    return fresh, len(result.findings) - len(fresh)


def render_baseline(findings: Iterable[Finding]) -> str:
    """Serialize findings into baseline-file form (stable ordering)."""
    entries = sorted(
        {finding_key(f) for f in findings}
    )
    doc = {
        "version": 1,
        "comment": (
            "Known findings CI tolerates; key is (rule, path, message). "
            "This file may only shrink — see README 'Static analysis & "
            "typing'."
        ),
        "findings": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in entries
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
