"""The rule engine: file contexts, suppressions and rule dispatch.

Design
------
A :class:`Rule` declares a stable id (``RA001`` ...), a one-line
invariant, and two methods:

* :meth:`Rule.applies_to` — a cheap path/module predicate so rules
  scoped to (say) ``repro.semantics.*`` never walk unrelated trees;
* :meth:`Rule.check` — yields :class:`Finding` objects for one parsed
  file (:class:`FileContext` carries the source, the ``ast`` tree, the
  dotted module guess and the raw lines).

The engine parses each file exactly once, runs every selected rule whose
scope matches, then drops findings suppressed by ``# ra: ignore[...]``
comments (collected with :mod:`tokenize`, so strings that merely contain
the marker text do not suppress anything).

Fixture testing uses ``force=True``: scope predicates are bypassed so a
rule can be exercised against ``tests/analysis_fixtures/*`` files that
live outside its production scope.

Flow rules
----------
A rule may set ``needs_flow = True`` to request the interprocedural
context (:class:`repro.analysis.flow.ProjectFlow`).  ``analyze_paths``
then runs in two phases — parse every file first, build one shared flow
over all of them, then dispatch rules per file with ``ctx.flow`` set —
so cross-file findings (lock-order cycles, transitive blocking) see the
whole project while per-file suppression machinery keeps working.  In
single-source mode (fixtures, ``analyze_source``) a one-file flow is
built on demand.

Suppression anchoring
---------------------
Directives and findings are both normalised through *line anchors*
before matching: decorator lines map to their ``def`` line, and the
continuation lines of a multi-line statement map to its first line.  A
``# ra: ignore[...]`` above a decorated function therefore reaches the
``def``-anchored finding, and an inline directive on the closing line of
a multi-line call suppresses the finding anchored at its first line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.analysis.flow import ProjectFlow

__all__ = [
    "AnalysisResult",
    "FileContext",
    "Finding",
    "Rule",
    "Suppressions",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "line_anchors",
    "module_name_for",
    "parse_context",
]

#: Directory names never descended into when walking path arguments.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", ".hypothesis"})

#: Directories holding deliberately-violating rule fixtures; skipped when
#: walking, still analyzable when a file inside is named explicitly.
FIXTURE_DIRS = frozenset({"analysis_fixtures"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


#: ``# ra: ignore``, ``# ra: ignore[RA001, RA002]``,
#: ``# ra: ignore-file[RA003]`` — an empty bracket list means "all rules".
_SUPPRESS_RE = re.compile(
    r"ra:\s*(?P<kind>ignore-file|ignore)\s*"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)

#: Sentinel rule set meaning "every rule".
_ALL = frozenset({"*"})


def _parse_rule_list(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return _ALL
    names = frozenset(part.strip().upper() for part in raw.split(",") if part.strip())
    return names or _ALL


@dataclass
class Suppressions:
    """Per-file and per-line ``ra: ignore`` directives."""

    file_rules: FrozenSet[str] = frozenset()
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if "*" in self.file_rules or rule in self.file_rules:
            return True
        at_line = self.line_rules.get(line, frozenset())
        return "*" in at_line or rule in at_line


def parse_suppressions(source: str) -> Suppressions:
    """Collect ``ra: ignore`` directives from real comment tokens.

    An inline directive suppresses its own line; a directive on a
    standalone comment line suppresses the next *code* line (so a
    justification block above the flagged statement works).
    """
    out = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    lines = source.splitlines()

    def is_blank_or_comment(lineno: int) -> bool:
        if not (1 <= lineno <= len(lines)):
            return False
        stripped = lines[lineno - 1].strip()
        return not stripped or stripped.startswith("#")

    file_rules: FrozenSet[str] = out.file_rules
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        if match.group("kind") == "ignore-file":
            file_rules = file_rules | rules
            continue
        target = line
        if lines[line - 1].strip().startswith("#"):
            # Standalone comment: walk down to the statement it documents.
            target = line + 1
            while target <= len(lines) and is_blank_or_comment(target):
                target += 1
        out.line_rules[target] = out.line_rules.get(target, frozenset()) | rules
    out.file_rules = file_rules
    return out


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for a file path.

    ``src/repro/core/budget.py`` -> ``repro.core.budget``;
    ``tests/test_obs.py`` -> ``tests.test_obs``.  Used by rule scope
    predicates, so only the ``repro``-rooted shape needs to be exact.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for anchor in ("repro", "tests", "benchmarks", "scripts", "examples"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed file."""

    path: str
    source: str
    tree: ast.Module
    module: str
    lines: List[str]
    force: bool = False
    #: interprocedural context, set when any active rule ``needs_flow``
    flow: Optional["ProjectFlow"] = None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def has_comment_on_line(self, lineno: int) -> bool:
        """Whether the physical line carries a (justification) comment."""
        text = self.line_text(lineno)
        return "#" in text


class Rule:
    """Base class for one ``RAxxx`` invariant."""

    id: str = "RA000"
    title: str = "unnamed rule"
    rationale: str = ""
    #: request the interprocedural :class:`ProjectFlow` on ``ctx.flow``
    needs_flow: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


@dataclass
class AnalysisResult:
    """Findings plus bookkeeping from one ``analyze_paths`` run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    def counts_by_rule(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


#: simple statements whose continuation lines anchor to their first line
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AnnAssign,
    ast.AugAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
)


def line_anchors(tree: ast.Module) -> Dict[int, int]:
    """Physical line -> the line findings and directives anchor to.

    Three normalisations: continuation lines of a multi-line simple
    statement map to its first line; decorator lines map to the ``def``
    / ``class`` line they decorate; the (possibly multi-line) header of
    a ``with`` statement maps to its first line.
    """
    anchors: Dict[int, int] = {}

    def span(first: int, last: Optional[int], target: int) -> None:
        if last is None or last < first:
            last = first
        for line in range(first, last + 1):
            # First mapping wins: inner nodes are visited after their
            # enclosing statement and must not re-anchor its lines.
            anchors.setdefault(line, target)

    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            for deco in node.decorator_list:
                span(
                    deco.lineno - 1,  # the ``@`` sits on the deco's line
                    getattr(deco, "end_lineno", deco.lineno),
                    node.lineno,
                )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            last = node.lineno
            for item in node.items:
                end = getattr(item.context_expr, "end_lineno", None)
                if end is not None:
                    last = max(last, end)
            span(node.lineno, last, node.lineno)
        elif isinstance(node, _SIMPLE_STMTS):
            span(node.lineno, getattr(node, "end_lineno", None), node.lineno)
    return anchors


def _needs_flow(rules: Sequence[Rule], ctx: FileContext) -> bool:
    return any(
        rule.needs_flow and (ctx.force or rule.applies_to(ctx))
        for rule in rules
    )


def _check_context(
    ctx: FileContext, rules: Sequence[Rule]
) -> Tuple[List[Finding], int]:
    """Dispatch rules over one parsed file and apply suppressions."""
    raw: List[Finding] = []
    for rule in rules:
        if ctx.force or rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    if not raw:
        return [], 0
    suppressions = parse_suppressions(ctx.source)
    anchors = line_anchors(ctx.tree)
    if suppressions.line_rules:
        merged: Dict[int, FrozenSet[str]] = {}
        for target, rule_ids in suppressions.line_rules.items():
            key = anchors.get(target, target)
            merged[key] = merged.get(key, frozenset()) | rule_ids
        suppressions.line_rules = merged
    kept = [
        f
        for f in raw
        if not suppressions.is_suppressed(f.rule, anchors.get(f.line, f.line))
    ]
    return sorted(kept), len(raw) - len(kept)


def parse_context(source: str, path: str, force: bool = False) -> FileContext:
    """Parse one source blob into a rule-ready :class:`FileContext`."""
    return FileContext(
        path=path,
        source=source,
        tree=ast.parse(source, filename=path),
        module=module_name_for(path),
        lines=source.splitlines(),
        force=force,
    )


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
    force: bool = False,
) -> Tuple[List[Finding], int]:
    """Run ``rules`` over one source blob; returns (findings, suppressed)."""
    ctx = parse_context(source, path, force=force)
    if _needs_flow(rules, ctx):
        from repro.analysis.flow import build_flow

        ctx.flow = build_flow([ctx])
    return _check_context(ctx, rules)


def analyze_file(
    path: str, rules: Sequence[Rule], force: bool = False
) -> Tuple[List[Finding], int]:
    """Parse and analyze one file (see :func:`analyze_source`)."""
    source = Path(path).read_text(encoding="utf-8")
    return analyze_source(source, path, rules, force=force)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths``, skipping cache/fixture dirs.

    A path naming a file directly is always yielded, even inside a
    fixture directory — that is how fixture tests opt in.
    """
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            key = str(p)
            if key not in seen:
                seen.add(key)
                yield key
            continue
        for sub in sorted(p.rglob("*.py")):
            parts = set(sub.parts)
            if parts & SKIP_DIRS or parts & FIXTURE_DIRS:
                continue
            key = str(sub)
            if key not in seen:
                seen.add(key)
                yield key


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Sequence[str]] = None,
    force: bool = False,
) -> AnalysisResult:
    """Analyze every Python file reachable from ``paths``.

    ``select`` filters rules by id (case-insensitive); unknown ids raise
    ``ValueError`` so typos fail loudly instead of silently passing.
    """
    from repro.analysis.rules import ALL_RULES

    active: List[Rule] = list(ALL_RULES if rules is None else rules)
    if select is not None:
        wanted = {s.upper() for s in select}
        known = {r.id for r in active}
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        active = [r for r in active if r.id in wanted]

    # Phase 1: parse everything.  Flow rules need the whole project in
    # hand before the first per-file check runs.
    result = AnalysisResult()
    contexts: List[FileContext] = []
    for file_path in iter_python_files(paths):
        try:
            source = Path(file_path).read_text(encoding="utf-8")
            contexts.append(parse_context(source, file_path, force=force))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            result.errors.append(f"{file_path}: {exc}")

    # Phase 2: one shared interprocedural context, if any rule wants it.
    if any(_needs_flow(active, ctx) for ctx in contexts):
        from repro.analysis.flow import build_flow

        flow = build_flow(contexts)
        for ctx in contexts:
            ctx.flow = flow

    for ctx in contexts:
        findings, suppressed = _check_context(ctx, active)
        result.files_checked += 1
        result.findings.extend(findings)
        result.suppressed += suppressed
    result.findings.sort()
    return result
