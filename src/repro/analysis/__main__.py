"""CLI for the invariant linter.

Usage::

    python -m repro.analysis [--format text|json|sarif]
                             [--select RA001,RA004]
                             [--baseline analysis_baseline.json]
                             [--list-rules] [--check-catalogue] paths...

``--baseline`` tolerates the findings recorded in the given baseline
file (keyed rule/path/message) and fails only on new ones; the summary
reports how many were baselined.

Exit status: 0 clean, 1 findings (or catalogue drift), 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import BaselineError, load_baseline, new_findings
from repro.analysis.engine import analyze_paths, iter_python_files
from repro.analysis.reporters import render_json, render_sarif, render_text
from repro.analysis.rules import ALL_RULES, rules_by_id

_METRIC_LITERAL = re.compile(r'"(ppkws_[a-z0-9_]+)"')


def _list_rules() -> str:
    lines = ["available rules:"]
    for rule in ALL_RULES:
        lines.append(f"  {rule.id}  {rule.title}")
        lines.append(f"         {rule.rationale}")
    return "\n".join(lines)


def check_catalogue(
    src_root: str = "src/repro", readme_path: str = "README.md"
) -> List[str]:
    """Both directions of catalogue sync; returns problem descriptions."""
    from repro.obs.catalogue import metric_names, missing_from_text

    problems: List[str] = []
    catalogued = metric_names()

    used = set()
    for file_path in iter_python_files([src_root]):
        if Path(file_path).name == "catalogue.py":
            continue
        text = Path(file_path).read_text(encoding="utf-8")
        used.update(_METRIC_LITERAL.findall(text))
    for name in sorted(used - catalogued):
        problems.append(
            f"metric `{name}` is recorded in {src_root} but missing from "
            f"repro/obs/catalogue.py"
        )
    for name in sorted(catalogued - used):
        problems.append(
            f"catalogue entry `{name}` is no longer used anywhere in "
            f"{src_root} (stale entry)"
        )

    readme = Path(readme_path)
    if readme.exists():
        for name in missing_from_text(readme.read_text(encoding="utf-8")):
            problems.append(
                f"catalogue entry `{name}` is missing from {readme_path}'s "
                f"metric table"
            )
    else:
        problems.append(f"README not found at {readme_path}")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the PPKWS tree.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to analyze")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="tolerate findings recorded in this baseline file; fail only "
        "on new ones",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--check-catalogue",
        action="store_true",
        help="verify src metrics, repro/obs/catalogue.py and the README "
        "metric table agree",
    )
    parser.add_argument(
        "--readme", default="README.md", help="README path for --check-catalogue"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.check_catalogue:
        src_root = args.paths[0] if args.paths else "src/repro"
        problems = check_catalogue(src_root=src_root, readme_path=args.readme)
        for problem in problems:
            print(problem)
        if not problems:
            print("catalogue, source and README metric tables are in sync")
        return 1 if problems else 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    select = None
    if args.select is not None:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        if not select:
            # `--select ""` / `--select ,` used to silently run nothing
            # and exit 0 — a typo that green-lights every violation.
            print(
                "error: --select given but no rule ids parsed "
                "(expected e.g. --select RA001,RA004)",
                file=sys.stderr,
            )
            return 2
        unknown = set(s.upper() for s in select) - set(rules_by_id())
        if unknown:
            print(
                f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = analyze_paths(args.paths, select=select)
    baselined = 0
    if baseline is not None:
        result.findings, baselined = new_findings(result, baseline)

    if args.fmt == "json":
        output = render_json(result)
    elif args.fmt == "sarif":
        output = render_sarif(result)
    else:
        output = render_text(result)
        if baseline is not None:
            output += f"\n{baselined} baselined finding(s) tolerated"
    print(output)
    if result.errors:
        return 2
    return 1 if result.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
