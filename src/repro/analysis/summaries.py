"""Per-function summaries: the cheap half of the flow analysis.

PPKWS's own architecture — a cheap partial evaluation (PEval) followed
by a bounded refinement fixpoint (ARefine) — is applied here to the
*analysis* layer: this module is the PEval of the interprocedural pass.
One linear AST walk per function produces a :class:`FunctionSummary`
recording everything the fixpoint in :mod:`repro.analysis.flow` needs:

* **locks** — every lock acquisition (``with self._x_lock:``,
  ``with self._network_lock(n).write_locked():``), with the set of lock
  tokens already held lexically at that point (the raw material of the
  lock-order graph) and whether the acquisition is *exclusive* (a plain
  mutex / condition / rwlock write side) or *shared* (rwlock read side);
* **blocking** — catalogued potentially-blocking operations (file IO,
  ``pickle``, ``copy.deepcopy``, ``time.sleep``, pipe ``send``/``recv``,
  queue ``put``/``get``, ``Future.result``, process spawn/join,
  executor ``submit``), again with the lexically-held lock set;
* **calls** — resolvable call sites with the held lock set and whether a
  ``budget`` argument is threaded through;
* **impure** — RNG / wall-clock / shared-state-mutation operations (the
  raw material of the RA012 bit-identity rule);
* cheap per-function facts: does it take a ``budget`` parameter, does it
  contain a vertex-expanding loop (the RA004 heuristic).

Summaries are purely lexical and never execute anything; all
cross-function reasoning lives in :class:`repro.analysis.flow.ProjectFlow`.

Lock tokens
-----------
A token names a lock *family*, not an instance: ``self._engines_lock``
inside ``PPKWSService`` becomes ``PPKWSService._engines_lock``; a
non-``self`` receiver keeps the bare attribute name (``w.lock`` ->
``lock``).  RWLock sides get a ``:read`` / ``:write`` suffix and
:func:`base_token` strips it for ordering purposes.  Two locks that
share a token merge into one graph node — that can only hide cycles,
never invent them — and re-acquiring the *same* token is deliberately
not an ordering edge (token identity cannot distinguish instances of a
per-object lock family).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.engine import FileContext

__all__ = [
    "BlockingOp",
    "CallSite",
    "FunctionSummary",
    "ImpureOp",
    "LockUse",
    "ModuleSummary",
    "Site",
    "base_token",
    "summarize_module",
]


@dataclass(frozen=True)
class Site:
    """A source location a finding can anchor to."""

    path: str
    line: int
    col: int


@dataclass(frozen=True)
class LockUse:
    """One lock acquisition, with what was already held around it."""

    token: str  #: canonical family token, e.g. ``PPKWSService._engines_lock``
    exclusive: bool  #: mutex/condition/write side (True) vs read side
    held: FrozenSet[str]  #: tokens lexically held when this one is taken
    site: Site


@dataclass(frozen=True)
class BlockingOp:
    """One catalogued potentially-blocking operation."""

    kind: str  #: catalogue key: ``file-io`` / ``pickle`` / ``deepcopy`` / ...
    detail: str  #: human rendering, e.g. ``copy.deepcopy(...)``
    held: FrozenSet[str]
    site: Site


@dataclass(frozen=True)
class ImpureOp:
    """One RNG / clock / shared-state-mutation operation (RA012)."""

    kind: str  #: ``rng`` / ``clock`` / ``env`` / ``global`` / ``engine-mutation``
    detail: str
    site: Site


@dataclass(frozen=True)
class CallSite:
    """One call to a (possibly resolvable) project function."""

    name: str  #: terminal callee name (``a.b.f(...)`` -> ``f``)
    kind: str  #: ``self`` / ``bare`` / ``attr`` / ``module``
    receiver: Optional[str]  #: simple receiver name for attr/module calls
    passes_budget: bool  #: a ``budget``-carrying argument is forwarded
    held: FrozenSet[str]  #: lock tokens lexically held at the call
    site: Site


@dataclass
class FunctionSummary:
    """Everything the interprocedural fixpoint needs about one function."""

    module: str
    qualname: str  #: ``Class.method``, ``func``, or ``outer.<locals>.inner``
    name: str
    cls: Optional[str]
    site: Site
    has_budget_param: bool
    expands: bool  #: contains a vertex-expanding loop (RA004 heuristic)
    locks: List[LockUse] = field(default_factory=list)
    blocking: List[BlockingOp] = field(default_factory=list)
    impure: List[ImpureOp] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)


@dataclass
class ModuleSummary:
    """One file's functions plus its import aliases (for call resolution)."""

    module: str
    path: str
    functions: List[FunctionSummary] = field(default_factory=list)
    #: local name -> dotted module it refers to (``import x.y as z``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, attr) from ``from module import attr``
    imported_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: class names defined in this module
    classes: List[str] = field(default_factory=list)


def base_token(token: str) -> str:
    """Strip an rwlock ``:read`` / ``:write`` mode suffix."""
    return token.split(":", 1)[0]


# ----------------------------------------------------------------------
# catalogues
# ----------------------------------------------------------------------
#: attribute names that suffix a lock-ish object
_LOCK_SUFFIXES = ("_lock", "_cond")

#: generic method names never used for call-graph resolution — they are
#: overwhelmingly dict/list/str builtins, so linking them to same-named
#: project methods would wire the graph to noise.
GENERIC_METHOD_NAMES = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "decode",
        "discard", "encode", "endswith", "extend", "format", "get",
        "index", "insert", "is_dir", "is_file", "items", "join", "keys",
        "mkdir", "open", "pop", "popitem", "put", "read", "remove",
        "setdefault", "sort", "split", "start", "startswith", "strip",
        "update", "values", "write",
    }
)

#: ``module.attr`` calls that are blocking, keyed by (receiver, attr)
_BLOCKING_MODULE_CALLS: Dict[Tuple[str, str], str] = {
    ("time", "sleep"): "sleep",
    ("pickle", "load"): "pickle",
    ("pickle", "loads"): "pickle",
    ("pickle", "dump"): "pickle",
    ("pickle", "dumps"): "pickle",
    ("copy", "deepcopy"): "deepcopy",
    ("os", "replace"): "file-io",
    ("os", "rename"): "file-io",
    ("os", "fsync"): "file-io",
    ("shutil", "copy"): "file-io",
    ("shutil", "move"): "file-io",
}

#: bare-name calls that are blocking
_BLOCKING_BARE_CALLS: Dict[str, str] = {
    "open": "file-io",
    "deepcopy": "deepcopy",
    "sleep": "sleep",
    "atomic_write": "file-io",
    "save_index": "file-io",
    "load_index": "file-io",
    "save_graph": "file-io",
    "load_graph": "file-io",
}

#: attribute calls that are blocking regardless of receiver
_BLOCKING_ATTR_CALLS: Dict[str, str] = {
    "recv": "ipc",
    "send": "ipc",
    "poll": "ipc",
    "read_text": "file-io",
    "write_text": "file-io",
    "read_bytes": "file-io",
    "write_bytes": "file-io",
    "result": "future-wait",
    "submit": "executor-submit",
    "execute_many": "executor-submit",
}

#: attribute calls that are blocking only for process/queue-ish receivers
_RECEIVER_GATED_ATTR_CALLS: Tuple[Tuple[str, Tuple[str, ...], str], ...] = (
    ("join", ("proc", "process", "thread", "worker", "t"), "process"),
    ("start", ("proc", "process"), "process"),
    ("put", ("queue",), "queue"),
    ("get", ("queue",), "queue"),
    ("terminate", ("proc", "process"), "process"),
)

#: terminal call names that are RNG (when reached through ``random``/rng)
_RNG_RECEIVERS = frozenset({"random", "rng", "nprandom"})
_RNG_NAMES = frozenset(
    {
        "random", "randint", "randrange", "shuffle", "choice", "choices",
        "sample", "gauss", "uniform", "normal", "permutation", "seed",
        "default_rng", "RandomState",
    }
)

#: wall/virtual clock reads banned from bit-identity kernels
_CLOCK_CALLS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "now", "utcnow"}
)

#: the RA004 expanding-loop heuristic (shared vocabulary)
_EXPANSION_CALLS = frozenset(
    {"heappop", "heappushpop", "neighbor_items", "neighbors"}
)


def _receiver_parts(expr: ast.expr) -> List[str]:
    """The dotted-name chain of a receiver (``a.b.c`` -> ["a","b","c"]).

    A call in the chain contributes its callee's chain in place:
    ``self._network_lock(n).write_locked`` -> ``["self",
    "_network_lock", "write_locked"]``.
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    parts.reverse()
    if isinstance(node, ast.Name):
        return [node.id] + parts
    if isinstance(node, ast.Call):
        return _receiver_parts(node.func) + parts
    return parts


def _is_budget_expr(expr: ast.expr) -> bool:
    """Whether an argument expression forwards a budget object."""
    if isinstance(expr, ast.Name):
        return "budget" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "budget" in expr.attr.lower()
    if isinstance(expr, ast.Call):
        parts = _receiver_parts(expr.func)
        return bool(parts) and "budget" in parts[-1].lower()
    return False


def _call_passes_budget(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "budget":
            return True
        if kw.arg is None and isinstance(kw.value, ast.Name):
            # **kwargs forwarding: assume the budget rides along.
            return True
    return any(_is_budget_expr(arg) for arg in node.args)


class _SummaryVisitor(ast.NodeVisitor):
    """One pass over a module: builds every function's summary."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.out = ModuleSummary(module=ctx.module, path=ctx.path)
        self._class_stack: List[str] = []
        self._fn_stack: List[FunctionSummary] = []
        self._held: List[str] = []

    # -- plumbing -------------------------------------------------------
    def _site(self, node: ast.AST) -> Site:
        return Site(
            self.ctx.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
        )

    def _held_set(self) -> FrozenSet[str]:
        return frozenset(self._held)

    def _current(self) -> Optional[FunctionSummary]:
        return self._fn_stack[-1] if self._fn_stack else None

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            self.out.module_aliases[local] = (
                alias.name if alias.asname else alias.name.split(".", 1)[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports are not used in this tree
        for alias in node.names:
            local = alias.asname or alias.name
            self.out.imported_names[local] = (node.module, alias.name)

    # -- scope tracking -------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._class_stack and not self._fn_stack:
            self.out.classes.append(node.name)
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _enter_function(self, node: ast.AST, name: str) -> None:
        parts: List[str] = []
        if self._fn_stack:
            parts = [self._fn_stack[-1].qualname, "<locals>"]
        elif self._class_stack:
            parts = [".".join(self._class_stack)]
        qualname = ".".join(parts + [name]) if parts else name
        args = getattr(node, "args", None)
        has_budget = False
        if args is not None:
            every = (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            has_budget = any(a.arg == "budget" for a in every)
        summary = FunctionSummary(
            module=self.ctx.module,
            qualname=qualname,
            name=name,
            cls=self._class_stack[-1] if self._class_stack else None,
            site=self._site(node),
            has_budget_param=has_budget,
            expands=False,
        )
        self.out.functions.append(summary)
        self._fn_stack.append(summary)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, node.name)
        # A nested def's body does not run where it is defined: lexically
        # held locks of the enclosing function do not apply inside it.
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved
        self._fn_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Treated as part of the enclosing function (no own summary) but
        # without the held-lock context — it runs later, elsewhere.
        saved, self._held = self._held, []
        self.generic_visit(node)
        self._held = saved

    # -- locks ----------------------------------------------------------
    def _lock_token(self, expr: ast.expr) -> Optional[Tuple[str, bool]]:
        """``(token, exclusive)`` for a with-context lock, else ``None``."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            mode = expr.func.attr
            if mode in ("read_locked", "write_locked"):
                inner = self._lock_token(expr.func.value)
                if inner is None:
                    parts = _receiver_parts(expr.func.value)
                    if not parts:
                        return None
                    base = self._qualify(parts)
                    if base is None:
                        return None
                else:
                    base = inner[0]
                suffix = ":read" if mode == "read_locked" else ":write"
                return base + suffix, mode == "write_locked"
            return None
        if isinstance(expr, ast.Attribute):
            name = expr.attr
            if name.endswith(_LOCK_SUFFIXES) or name == "lock":
                qualified = self._qualify_attr(expr)
                return qualified, True
            return None
        if isinstance(expr, ast.Name) and expr.id.endswith(_LOCK_SUFFIXES):
            return expr.id, True
        return None

    def _qualify(self, parts: List[str]) -> Optional[str]:
        """Class-qualify a ``self``-rooted dotted chain's terminal name."""
        if not parts:
            return None
        terminal = parts[-1]
        if parts[0] == "self" and self._class_stack:
            return f"{self._class_stack[-1]}.{terminal}"
        return terminal

    def _qualify_attr(self, expr: ast.Attribute) -> str:
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" and (
            self._class_stack
        ):
            return f"{self._class_stack[-1]}.{expr.attr}"
        return expr.attr

    def visit_With(self, node: ast.With) -> None:
        tokens: List[str] = []
        current = self._current()
        for item in node.items:
            # The context expression evaluates *before* the lock is held:
            # visit it under the outer held set (so
            # ``self._network_lock(n)``'s own locking is not mis-scoped).
            self.visit(item.context_expr)
            found = self._lock_token(item.context_expr)
            if found is None:
                continue
            token, exclusive = found
            if current is not None:
                current.locks.append(
                    LockUse(
                        token=token,
                        exclusive=exclusive,
                        held=self._held_set(),
                        site=self._site(item.context_expr),
                    )
                )
            tokens.append(token)
        self._held.extend(tokens)
        for stmt in node.body:
            self.visit(stmt)
        if tokens:
            del self._held[-len(tokens):]

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    # -- loops (expansion heuristic) ------------------------------------
    def _loop(self, node: ast.AST) -> None:
        current = self._current()
        if current is not None and not current.expands:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    fn = sub.func
                    name = (
                        fn.id if isinstance(fn, ast.Name)
                        else fn.attr if isinstance(fn, ast.Attribute)
                        else None
                    )
                    if name in _EXPANSION_CALLS:
                        current.expands = True
                        break
        self.generic_visit(node)

    visit_For = _loop
    visit_AsyncFor = _loop
    visit_While = _loop

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        current = self._current()
        if current is not None:
            self._classify_call(current, node)
        self.generic_visit(node)

    def _classify_call(self, fn: FunctionSummary, node: ast.Call) -> None:
        func = node.func
        site = self._site(node)
        held = self._held_set()
        detail: Optional[Tuple[str, str]] = None  # (kind, rendering)

        if isinstance(func, ast.Name):
            name = func.id
            if name in _BLOCKING_BARE_CALLS:
                detail = (_BLOCKING_BARE_CALLS[name], f"{name}(...)")
            fn.calls.append(
                CallSite(
                    name=name, kind="bare", receiver=None,
                    passes_budget=_call_passes_budget(node),
                    held=held, site=site,
                )
            )
        elif isinstance(func, ast.Attribute):
            name = func.attr
            parts = _receiver_parts(func.value)
            receiver = parts[-1] if parts else None
            root = parts[0] if parts else None
            rendered = ".".join(parts[-2:] + [name]) + "(...)"
            if root is not None and (root, name) in _BLOCKING_MODULE_CALLS:
                detail = (_BLOCKING_MODULE_CALLS[(root, name)], rendered)
            elif name in _BLOCKING_ATTR_CALLS:
                detail = (_BLOCKING_ATTR_CALLS[name], rendered)
            else:
                for attr, needles, kind in _RECEIVER_GATED_ATTR_CALLS:
                    if name != attr or receiver is None:
                        continue
                    low = receiver.lower()
                    if any(needle in low for needle in needles):
                        detail = (kind, rendered)
                        break
            if detail is not None and name == "wait" and receiver is not None:
                detail = None  # handled below as a condition wait
            if name == "wait":
                token = (
                    self._qualify_attr(func.value)
                    if isinstance(func.value, ast.Attribute)
                    else receiver
                )
                # ``cond.wait()`` while holding ``cond`` is the condition
                # -variable idiom (it releases the lock); waiting on
                # anything else blocks for real.
                if token is not None and token not in held:
                    detail = ("wait", rendered)
            self._record_impurity(fn, node, parts, name, rendered)
            kind = "self" if root == "self" else (
                "module" if root is not None and (
                    root in self.out.module_aliases
                    or root in self.out.imported_names
                ) else "attr"
            )
            fn.calls.append(
                CallSite(
                    name=name, kind=kind, receiver=receiver if kind != "self"
                    else (parts[-1] if len(parts) > 1 else None),
                    passes_budget=_call_passes_budget(node),
                    held=held, site=site,
                )
            )
        if detail is not None:
            kind, rendered = detail
            fn.blocking.append(
                BlockingOp(kind=kind, detail=rendered, held=held, site=site)
            )

    # -- impurity (RA012 raw material) ----------------------------------
    def _record_impurity(
        self,
        fn: FunctionSummary,
        node: ast.Call,
        parts: List[str],
        name: str,
        rendered: str,
    ) -> None:
        lowered = [p.lower() for p in parts]
        if name in _RNG_NAMES and any(p in _RNG_RECEIVERS for p in lowered):
            fn.impure.append(ImpureOp("rng", rendered, self._site(node)))
        elif name in _CLOCK_CALLS and parts and parts[0] in (
            "time", "datetime", "dt"
        ):
            fn.impure.append(ImpureOp("clock", rendered, self._site(node)))

    def visit_Global(self, node: ast.Global) -> None:
        current = self._current()
        if current is not None:
            current.impure.append(
                ImpureOp(
                    "global",
                    f"global {', '.join(node.names)}",
                    self._site(node),
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        current = self._current()
        if current is not None:
            for target in node.targets:
                self._check_engine_mutation(current, target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        current = self._current()
        if current is not None:
            self._check_engine_mutation(current, node.target, node)
        self.generic_visit(node)

    def _check_engine_mutation(
        self, fn: FunctionSummary, target: ast.expr, node: ast.AST
    ) -> None:
        """Attribute writes through an ``engine``/``service`` reference.

        ``self.x = ...`` is a function's own state and stays legal;
        writing through a parameter named ``engine`` (or a stored
        ``self.engine``) mutates state shared with concurrent queries.
        """
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        inner = target.value if isinstance(target, ast.Subscript) else target
        parts = _receiver_parts(
            inner.value if isinstance(inner, ast.Attribute) else inner
        )
        shared = {"engine", "service"}
        if any(p in shared for p in parts):
            fn.impure.append(
                ImpureOp(
                    "engine-mutation",
                    ".".join(parts + (
                        [inner.attr] if isinstance(inner, ast.Attribute) else []
                    )) + " = ...",
                    self._site(node),
                )
            )


def summarize_module(ctx: FileContext) -> ModuleSummary:
    """Summarize every function in one parsed file."""
    visitor = _SummaryVisitor(ctx)
    visitor.visit(ctx.tree)
    return visitor.out
