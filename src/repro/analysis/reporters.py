"""Finding reporters: human text, machine JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.analysis.engine import AnalysisResult, Rule

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(result: AnalysisResult) -> str:
    """``path:line:col: RAxxx message`` lines plus a summary footer."""
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_rule()
    by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    summary = (
        f"{len(result.findings)} finding(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + f", {result.suppressed} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    for error in result.errors:
        lines.append(f"error: {error}")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """A stable JSON document (consumed by ``scripts/analysis_report.py``)."""
    doc = {
        "version": 1,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": result.suppressed,
        "files_checked": result.files_checked,
        "errors": list(result.errors),
        "counts_by_rule": result.counts_by_rule(),
    }
    return json.dumps(doc, indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    result: AnalysisResult, rules: Optional[Sequence[Rule]] = None
) -> str:
    """A minimal SARIF 2.1.0 log (one run, one result per finding).

    Enough of the standard for code-scanning UIs and the CI artifact:
    the driver carries the rule metadata, each result carries a
    physical location with line/column.
    """
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    driver_rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": f.line, "startColumn": f.col},
                    }
                }
            ],
        }
        for f in result.findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "README.md#static-analysis--typing"
                        ),
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
