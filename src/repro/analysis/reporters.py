"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisResult

__all__ = ["render_json", "render_text"]


def render_text(result: AnalysisResult) -> str:
    """``path:line:col: RAxxx message`` lines plus a summary footer."""
    lines = [finding.render() for finding in result.findings]
    counts = result.counts_by_rule()
    by_rule = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    summary = (
        f"{len(result.findings)} finding(s)"
        + (f" [{by_rule}]" if by_rule else "")
        + f", {result.suppressed} suppressed, "
        f"{result.files_checked} file(s) checked"
    )
    for error in result.errors:
        lines.append(f"error: {error}")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """A stable JSON document (consumed by ``scripts/analysis_report.py``)."""
    doc = {
        "version": 1,
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": result.suppressed,
        "files_checked": result.files_checked,
        "errors": list(result.errors),
        "counts_by_rule": result.counts_by_rule(),
    }
    return json.dumps(doc, indent=2, sort_keys=True)
